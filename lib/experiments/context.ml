module Rng = Mppm_util.Rng
module Configs = Mppm_cache.Configs
module Suite = Mppm_trace.Suite
module Single_core = Mppm_simcore.Single_core
module Core_model = Mppm_simcore.Core_model
module Multi_core = Mppm_multicore.Multi_core
module Profile = Mppm_profile.Profile
module Model = Mppm_core.Model
module Metrics = Mppm_core.Metrics
module Mix = Mppm_workload.Mix
module Category = Mppm_workload.Category
module Fingerprint = Mppm_util.Fingerprint
module Registry = Mppm_obs.Registry
module Pool = Mppm_pool.Pool
module Single_flight = Mppm_pool.Single_flight

type t = {
  scale : Scale.t;
  core : Core_model.params;
  contention : Mppm_contention.Contention.model;
  update_rule : Model.update_rule;
  smoothing : float;
  seed : int;
  cache_dir : string option;
  profiles : (int * int, Profile.t) Single_flight.t;  (* (llc_config, bench) *)
  offsets : int array;  (* per-core-slot address offsets *)
}

let max_cores = 16

let create ?(core = Core_model.default)
    ?(model_contention = Mppm_contention.Contention.default)
    ?(model_update = Model.Consistent) ?(model_smoothing = 0.5) ?(seed = 42)
    ?cache_dir scale =
  (match cache_dir with
  | Some dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  | None -> ());
  {
    scale;
    core;
    contention = model_contention;
    update_rule = model_update;
    smoothing = model_smoothing;
    seed;
    cache_dir;
    profiles = Single_flight.create ~metric:"profile_cache" ();
    offsets = Multi_core.default_offsets ~seed max_cores;
  }

let scale t = t.scale
let seed t = t.seed

let rng t purpose =
  (* Derive a purpose-specific seed so experiment arms stay independent. *)
  let h = ref t.seed in
  String.iter (fun c -> h := (!h * 31) + Char.code c) purpose;
  Rng.create ~seed:(!h land max_int)

let model_params t =
  {
    (Model.default_params
       ~trace_instructions:t.scale.Scale.trace_instructions)
    with
    contention = t.contention;
    update_rule = t.update_rule;
    smoothing = t.smoothing;
  }

let hierarchy _t ~llc_config = Configs.baseline ~llc:llc_config ()

let cache_path t ~llc_config bench_index =
  Option.map
    (fun dir ->
      (* The digest covers everything the profile depends on — including
         the serialization format version, so entries written by an older
         (lossier) writer read as stale, never as the requested
         profile. *)
      let benchmark = Suite.all.(bench_index) in
      let digest =
        Fingerprint.to_hex
          (Fingerprint.of_value
             ( benchmark,
               t.core,
               hierarchy t ~llc_config,
               t.scale,
               Suite.seed_for benchmark.Mppm_trace.Benchmark.name,
               Profile.format_version ))
      in
      Filename.concat dir
        (Printf.sprintf "%s-cfg%d-%s.prof" Suite.names.(bench_index)
           llc_config digest))
    t.cache_dir

let compute_profile t ~llc_config bench_index =
  let benchmark = Suite.all.(bench_index) in
  Single_core.profile
    (Single_core.config ~core:t.core (hierarchy t ~llc_config))
    ~benchmark
    ~seed:(Suite.seed_for benchmark.Mppm_trace.Benchmark.name)
    ~trace_instructions:t.scale.Scale.trace_instructions
    ~interval_instructions:t.scale.Scale.interval_instructions

(* Cache-directory entries for benchmark [bench_index] at [llc_config] whose
   fingerprint digest no longer matches: the human-readable
   "name-cfgN-" prefix is recognized but the digest differs, i.e. some
   profile input (core params, hierarchy, scale, seed, spec) changed. *)
let stale_siblings t ~llc_config bench_index =
  match (t.cache_dir, cache_path t ~llc_config bench_index) with
  | Some dir, Some live ->
      let live_base = Filename.basename live in
      let prefix =
        Printf.sprintf "%s-cfg%d-" Suite.names.(bench_index) llc_config
      in
      Array.fold_left
        (fun acc f ->
          if
            f <> live_base
            && String.starts_with ~prefix f
            && Filename.check_suffix f ".prof"
          then acc + 1
          else acc)
        0 (Sys.readdir dir)
  | _ -> 0

(* The memo table is a single-flight front (one computation per key,
   shared by concurrent pool workers); memo hits keep their historical
   counter name through the table's [~metric]. *)
let profile t ~llc_config bench_index =
  if bench_index < 0 || bench_index >= Suite.count then
    invalid_arg "Context.profile: bad benchmark index";
  Single_flight.get t.profiles (llc_config, bench_index) (fun _ ->
      match cache_path t ~llc_config bench_index with
      | Some path when Sys.file_exists path ->
          Registry.incr "profile_cache.hits";
          Profile.load path
      | Some path ->
          Registry.incr "profile_cache.misses";
          Registry.add "profile_cache.stale"
            (float_of_int (stale_siblings t ~llc_config bench_index));
          let p = compute_profile t ~llc_config bench_index in
          Profile.save p path;
          p
      | None ->
          Registry.incr "profile_cache.misses";
          compute_profile t ~llc_config bench_index)

type cache_report = {
  cr_live : string list;
  cr_stale : string list;
  cr_tmp : string list;
  cr_foreign : string list;
}

let scan_cache t =
  Option.map
    (fun dir ->
      (* Basenames every (benchmark, Table 2 config) pair maps to under the
         current context settings. *)
      let live_names = Hashtbl.create ~random:false 128 in
      for cfg = 1 to Configs.llc_config_count do
        for i = 0 to Suite.count - 1 do
          match cache_path t ~llc_config:cfg i with
          | Some p -> Hashtbl.replace live_names (Filename.basename p) ()
          | None -> ()
        done
      done;
      let recognized f =
        Filename.check_suffix f ".prof"
        && Array.exists
             (fun name ->
               let rec try_cfg cfg =
                 cfg <= Configs.llc_config_count
                 && (String.starts_with
                       ~prefix:(Printf.sprintf "%s-cfg%d-" name cfg)
                       f
                    || try_cfg (cfg + 1))
               in
               try_cfg 1)
             Suite.names
      in
      let files = Sys.readdir dir in
      Array.sort compare files;
      Array.fold_left
        (fun report f ->
          if Filename.check_suffix f ".tmp" then
            (* An orphaned atomic-write staging file: Profile.save renames
               these away on success, so a survivor is an interrupted
               writer's leftover. *)
            { report with cr_tmp = f :: report.cr_tmp }
          else if Hashtbl.mem live_names f then
            { report with cr_live = f :: report.cr_live }
          else if recognized f then
            { report with cr_stale = f :: report.cr_stale }
          else { report with cr_foreign = f :: report.cr_foreign })
        { cr_live = []; cr_stale = []; cr_tmp = []; cr_foreign = [] }
        files
      |> fun r ->
      {
        cr_live = List.rev r.cr_live;
        cr_stale = List.rev r.cr_stale;
        cr_tmp = List.rev r.cr_tmp;
        cr_foreign = List.rev r.cr_foreign;
      })
    t.cache_dir

let prune_cache t =
  match (t.cache_dir, scan_cache t) with
  | Some dir, Some report ->
      let doomed = report.cr_stale @ report.cr_tmp in
      List.iter (fun f -> Sys.remove (Filename.concat dir f)) doomed;
      doomed
  | _ -> []

let all_profiles ?pool t ~llc_config =
  match pool with
  | None -> Array.init Suite.count (fun i -> profile t ~llc_config i)
  | Some pool ->
      Pool.map pool
        (fun i -> profile t ~llc_config i)
        (Array.init Suite.count Fun.id)

let cpi_single t ~llc_config mix =
  Array.map
    (fun i -> Profile.cpi (profile t ~llc_config i))
    (Mix.indices mix)

type measured = {
  m_cpi_single : float array;
  m_cpi_multi : float array;
  m_slowdowns : float array;
  m_stp : float;
  m_antt : float;
  m_detail : Multi_core.result;
}

let detailed ?llc_partition t ~llc_config mix =
  let indices = Mix.indices mix in
  if Array.length indices > max_cores then
    invalid_arg "Context.detailed: mix larger than the supported core count";
  let specs =
    Array.mapi
      (fun slot bench_index ->
        let benchmark = Suite.all.(bench_index) in
        {
          Multi_core.benchmark;
          seed = Suite.seed_for benchmark.Mppm_trace.Benchmark.name;
          offset = t.offsets.(slot);
        })
      indices
  in
  let detail =
    Multi_core.run
      (Multi_core.config ~core:t.core ?llc_partition (hierarchy t ~llc_config))
      ~programs:specs
      ~trace_instructions:t.scale.Scale.trace_instructions
  in
  let m_cpi_single = cpi_single t ~llc_config mix in
  let m_cpi_multi =
    Array.map
      (fun p -> p.Multi_core.multicore_cpi)
      detail.Multi_core.programs
  in
  {
    m_cpi_single;
    m_cpi_multi;
    m_slowdowns = Metrics.slowdowns ~cpi_single:m_cpi_single ~cpi_multi:m_cpi_multi;
    m_stp = Metrics.stp ~cpi_single:m_cpi_single ~cpi_multi:m_cpi_multi;
    m_antt = Metrics.antt ~cpi_single:m_cpi_single ~cpi_multi:m_cpi_multi;
    m_detail = detail;
  }

let mix_profiles t ~llc_config mix =
  Array.map (fun i -> profile t ~llc_config i) (Mix.indices mix)

let predict ?obs t ~llc_config mix =
  Model.predict_profiles ?obs (model_params t) (mix_profiles t ~llc_config mix)

let predict_with ?obs t ~params ~llc_config mix =
  Model.predict_profiles ?obs params (mix_profiles t ~llc_config mix)

let predict_static t ~llc_config mix =
  Mppm_core.Static_model.predict
    { Mppm_core.Static_model.default_params with
      contention = t.contention }
    (mix_profiles t ~llc_config mix)

let categories t ~llc_config =
  Category.classify_profiles (all_profiles t ~llc_config)
