(** Fig. 9 / Sec. 6: identifying stress workloads.

    MPPM's headline application: rank all workload mixes by predicted STP
    and check that the worst (stress) workloads it identifies coincide with
    the worst workloads under detailed simulation.  The paper finds the
    top-23 of the 25 worst mixes, with gamess the decisive sharing-
    sensitive benchmark (2.2x slowdown vs at most ~1.3x for the rest). *)

type t = {
  sorted : (float * float) array;
      (** (measured, predicted) STP pairs sorted by increasing measured
          STP — the two curves of Fig. 9 *)
  worst_k : int;
  overlap : int;
      (** how many of the measured worst-[k] mixes MPPM also places in its
          own worst [k] *)
  per_benchmark_slowdown : (string * float * float) array;
      (** per suite benchmark appearing in the population: maximum
          (measured, predicted) slowdown across all mixes, sorted
          descending by measured — the Sec. 6 sensitivity table *)
}

val analyze : ?worst_k:int -> Accuracy.run -> t
(** [analyze run] post-processes an {!Accuracy.run} population (default
    [worst_k] = population/6, matching the paper's 25-of-150). *)

val pp_sorted : Format.formatter -> t -> unit
(** The two Fig. 9 curves as an ASCII plot. *)

val pp_summary : Format.formatter -> t -> unit
(** Worst-[k] overlap plus the per-benchmark slowdown table. *)
