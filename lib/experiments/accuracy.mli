(** Model-accuracy experiments: Fig. 4 (STP/ANTT scatter and average errors
    for 2/4/8 cores, plus the 16-core spot check), Fig. 5 (per-program
    slowdown scatter) and Fig. 6 (CPI breakdown of the worst-STP mix). *)

type mix_eval = {
  mix : Mppm_workload.Mix.t;
  measured : Context.measured;
  predicted : Mppm_core.Model.result;
}
(** One mix's detailed-simulation measurement and MPPM prediction. *)

type run = {
  cores : int;
  llc_config : int;
  evals : mix_eval array;
  stp_error : float;  (** mean relative |predicted - measured| / measured *)  (* mppm: unit 1 *)
  antt_error : float;  (* mppm: unit 1 *)
  slowdown_error : float;  (** over all programs of all mixes *)  (* mppm: unit 1 *)
}

val evaluate :
  ?on_mix:(done_:int -> total:int -> unit) ->
  ?pool:Mppm_pool.Pool.t ->
  Context.t ->
  llc_config:int ->
  cores:int ->
  count:int ->
  run
(** [evaluate ctx ~llc_config ~cores ~count] draws [count] random mixes
    (paper: 150 for 2/4/8 cores on config #1; 25 for 16 cores on config
    #4), runs detailed simulation and MPPM on each, and aggregates the
    errors.  [on_mix], if given, is called after each mix with the number
    completed so far — progress reporting lives in the caller; the
    library never prints.  [pool] evaluates the mixes in parallel: the
    whole population is drawn before any task runs and results are
    positional, so the run is bit-for-bit identical to the sequential
    one; [on_mix] is then serialized under the pool's mutex. *)

val scatter_stp : run -> (float * float) array
(** (predicted, measured) STP pairs — the dots of Fig. 4(a). *)

val scatter_antt : run -> (float * float) array
(** (predicted, measured) ANTT pairs — the dots of Fig. 4(b). *)

val scatter_slowdown : run -> (float * float) array
(** (predicted, measured) per-program slowdowns — the dots of Fig. 5. *)

val worst_stp_eval : run -> mix_eval
(** The mix with the lowest measured STP (Fig. 6's subject). *)

(** Fig. 6 rows: per-program isolated, measured multi-core and predicted
    multi-core CPI. *)
type cpi_row = {
  program : string;
  isolated_cpi : float;  (* mppm: unit cycles/insns *)
  measured_cpi : float;  (* mppm: unit cycles/insns *)
  predicted_cpi : float;  (* mppm: unit cycles/insns *)
}

val cpi_rows : mix_eval -> cpi_row array
(** The Fig. 6 table for one mix, in mix order. *)

val pp_run_summary : Format.formatter -> run -> unit
(** Average errors of a run, one line per metric. *)

val pp_scatter : label:string -> Format.formatter -> (float * float) array -> unit
(** ASCII scatter plot of (predicted, measured) pairs. *)

val pp_cpi_rows : Format.formatter -> cpi_row array -> unit
(** The Fig. 6 CPI-breakdown table. *)
