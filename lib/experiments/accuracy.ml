module Stats = Mppm_util.Stats
module Mix = Mppm_workload.Mix
module Sampler = Mppm_workload.Sampler
module Model = Mppm_core.Model

type mix_eval = {
  mix : Mix.t;
  measured : Context.measured;
  predicted : Model.result;
}

type run = {
  cores : int;
  llc_config : int;
  evals : mix_eval array;
  stp_error : float;
  antt_error : float;
  slowdown_error : float;
}

let evaluate ?on_mix ?pool ctx ~llc_config ~cores ~count =
  (* All sampling happens here, before any task runs: each task closes
     over its pre-drawn mix, so the population (and every result) is
     independent of the job count. *)
  let rng = Context.rng ctx (Printf.sprintf "accuracy-%d-%d" llc_config cores) in
  let mixes = Sampler.random_mixes rng ~cores ~count in
  let total = Array.length mixes in
  let eval_mix mix =
    {
      mix;
      measured = Context.detailed ctx ~llc_config mix;
      predicted = Context.predict ctx ~llc_config mix;
    }
  in
  let evals =
    match pool with
    | Some pool -> Mppm_pool.Pool.map ?on_done:on_mix pool eval_mix mixes
    | None ->
        Array.mapi
          (fun i mix ->
            let eval = eval_mix mix in
            (match on_mix with
            | Some f -> f ~done_:(i + 1) ~total
            | None -> ());
            eval)
          mixes
  in
  let collect f = Array.map f evals in
  let stp_error =
    Stats.mean_relative_error
      ~predicted:(collect (fun e -> e.predicted.Model.stp))
      ~measured:(collect (fun e -> e.measured.Context.m_stp))
  in
  let antt_error =
    Stats.mean_relative_error
      ~predicted:(collect (fun e -> e.predicted.Model.antt))
      ~measured:(collect (fun e -> e.measured.Context.m_antt))
  in
  let predicted_slowdowns =
    Array.concat
      (Array.to_list
         (collect (fun e ->
              Array.map (fun p -> p.Model.slowdown) e.predicted.Model.programs)))
  in
  let measured_slowdowns =
    Array.concat (Array.to_list (collect (fun e -> e.measured.Context.m_slowdowns)))
  in
  let slowdown_error =
    Stats.mean_relative_error ~predicted:predicted_slowdowns
      ~measured:measured_slowdowns
  in
  { cores; llc_config; evals; stp_error; antt_error; slowdown_error }

let scatter_stp run =
  Array.map
    (fun e -> (e.predicted.Model.stp, e.measured.Context.m_stp))
    run.evals

let scatter_antt run =
  Array.map
    (fun e -> (e.predicted.Model.antt, e.measured.Context.m_antt))
    run.evals

let scatter_slowdown run =
  Array.concat
    (Array.to_list
       (Array.map
          (fun e ->
            Array.mapi
              (fun i p -> (p.Model.slowdown, e.measured.Context.m_slowdowns.(i)))
              e.predicted.Model.programs)
          run.evals))

let worst_stp_eval run =
  if Array.length run.evals = 0 then invalid_arg "Accuracy.worst_stp_eval";
  Array.fold_left
    (fun worst e ->
      if e.measured.Context.m_stp < worst.measured.Context.m_stp then e
      else worst)
    run.evals.(0) run.evals

type cpi_row = {
  program : string;
  isolated_cpi : float;
  measured_cpi : float;
  predicted_cpi : float;
}

let cpi_rows eval =
  Array.mapi
    (fun i p ->
      {
        program = p.Model.name;
        isolated_cpi = p.Model.cpi_single;
        measured_cpi = eval.measured.Context.m_cpi_multi.(i);
        predicted_cpi = p.Model.cpi_multi;
      })
    eval.predicted.Model.programs

let pp_run_summary ppf run =
  Format.fprintf ppf
    "%d cores, config #%d, %d mixes: avg error STP %.1f%%, ANTT %.1f%%, \
     per-program slowdown %.1f%%"
    run.cores run.llc_config (Array.length run.evals)
    (100.0 *. run.stp_error) (100.0 *. run.antt_error)
    (100.0 *. run.slowdown_error)

let pp_scatter ~label ppf points =
  Format.fprintf ppf "# %s: predicted measured@." label;
  Array.iter
    (fun (predicted, measured) ->
      Format.fprintf ppf "%.4f %.4f@." predicted measured)
    points

let pp_cpi_rows ppf rows =
  Format.fprintf ppf "%-12s %10s %10s %10s@." "program" "isolated"
    "measured" "predicted";
  Array.iter
    (fun row ->
      Format.fprintf ppf "%-12s %10.3f %10.3f %10.3f@." row.program
        row.isolated_cpi row.measured_cpi row.predicted_cpi)
    rows
