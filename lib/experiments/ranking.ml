module Rank = Mppm_util.Rank
module Rng = Mppm_util.Rng
module Stats = Mppm_util.Stats
module Mix = Mppm_workload.Mix
module Sampler = Mppm_workload.Sampler
module Category = Mppm_workload.Category
module Model = Mppm_core.Model

type options = {
  cores : int;
  random_pool : int;
  category_pool_per_composition : int;
  sets : int;
  per_set : int;
  per_composition : int;
  mppm_mixes : int;
}

let default_options =
  {
    cores = 4;
    random_pool = 36;
    category_pool_per_composition = 12;
    sets = 20;
    per_set = 12;
    per_composition = 4;
    mppm_mixes = 1_000;
  }

let paper_options =
  {
    cores = 4;
    random_pool = 150;
    category_pool_per_composition = 50;
    sets = 20;
    per_set = 12;
    per_composition = 4;
    mppm_mixes = 5_000;
  }

type set_eval = { stp_rho : float; antt_rho : float }

type pair_outcome = {
  other_config : int;
  agree_both_right : float;
  agree_both_wrong : float;
  disagree_mppm_right : float;
  disagree_practice_right : float;
}

type t = {
  options : options;
  config_ids : int array;
  reference_mean_stp : float array;
  reference_mean_antt : float array;
  mppm_mean_stp : float array;
  mppm_mean_antt : float array;
  random_sets : set_eval array;
  category_sets : set_eval array;
  mppm_eval : set_eval;
  pairwise : pair_outcome array;
}

let config_ids = Array.init Mppm_cache.Configs.llc_config_count (fun i -> i + 1)

(* Mean of a metric over a list of per-mix measurements, one value per
   config: means.(config_index). *)
let means_over per_config_values =
  Array.map Stats.mean per_config_values

let run ?pool ctx options =
  let pool_rng = Context.rng ctx "ranking-pool" in
  let set_rng = Context.rng ctx "ranking-sets" in
  let mppm_rng = Context.rng ctx "ranking-mppm" in
  let cores = options.cores in
  (* --- pools ------------------------------------------------------- *)
  let random_pool =
    Sampler.random_mixes pool_rng ~cores ~count:options.random_pool
  in
  let classes = Context.categories ctx ~llc_config:1 in
  let mem, comp = Category.partition classes in
  let category_pool =
    Category.compositions
    |> List.map (fun composition ->
           ( composition,
             Array.init options.category_pool_per_composition (fun _ ->
                 Category.random_mix pool_rng ~mem ~comp ~cores composition) ))
  in
  (* --- detailed simulation of every pool mix on every config --------
     Both population sweeps fan out over the pool when one is given; every
     mix is pre-drawn above and tasks are mapped positionally, so results
     match the sequential sweep bit for bit. *)
  let pool_map f xs =
    match pool with
    | Some pool -> Mppm_pool.Pool.map pool f xs
    | None -> Array.map f xs
  in
  let simulate mixes =
    pool_map
      (fun mix ->
        Array.map
          (fun cfg ->
            let m = Context.detailed ctx ~llc_config:cfg mix in
            (m.Context.m_stp, m.Context.m_antt))
          config_ids)
      mixes
  in
  let random_results = simulate random_pool in
  let category_results =
    List.map (fun (c, mixes) -> (c, simulate mixes)) category_pool
  in
  let n_configs = Array.length config_ids in
  let column results metric_of cfg_idx =
    Array.map (fun per_cfg -> metric_of per_cfg.(cfg_idx)) results
  in
  let reference_mean_stp =
    means_over (Array.init n_configs (column random_results fst))
  in
  let reference_mean_antt =
    means_over (Array.init n_configs (column random_results snd))
  in
  (* --- current-practice sets ---------------------------------------- *)
  let set_eval per_mix_results =
    let stp_means =
      Array.init n_configs (fun c -> Stats.mean (column per_mix_results fst c))
    in
    let antt_means =
      Array.init n_configs (fun c -> Stats.mean (column per_mix_results snd c))
    in
    {
      stp_rho = Rank.spearman stp_means reference_mean_stp;
      antt_rho = Rank.spearman antt_means reference_mean_antt;
    }
  in
  let subsample rng results count =
    let n = Array.length results in
    if count >= n then Array.copy results
    else
      Array.map
        (fun i -> results.(i))
        (Rng.sample_without_replacement rng ~n ~k:count)
  in
  let random_sets =
    Array.init options.sets (fun _ ->
        set_eval (subsample set_rng random_results options.per_set))
  in
  let category_set_results () =
    category_results
    |> List.map (fun (_, results) ->
           subsample set_rng results options.per_composition)
    |> Array.concat
  in
  let category_sets =
    Array.init options.sets (fun _ -> set_eval (category_set_results ()))
  in
  (* --- the MPPM population ------------------------------------------ *)
  let mppm_mixes =
    Sampler.random_mixes mppm_rng ~cores ~count:options.mppm_mixes
  in
  let mppm_results =
    pool_map
      (fun mix ->
        Array.map
          (fun cfg ->
            let r = Context.predict ctx ~llc_config:cfg mix in
            (r.Model.stp, r.Model.antt))
          config_ids)
      mppm_mixes
  in
  let mppm_mean_stp =
    means_over (Array.init n_configs (column mppm_results fst))
  in
  let mppm_mean_antt =
    means_over (Array.init n_configs (column mppm_results snd))
  in
  let mppm_eval =
    {
      stp_rho = Rank.spearman mppm_mean_stp reference_mean_stp;
      antt_rho = Rank.spearman mppm_mean_antt reference_mean_antt;
    }
  in
  (* --- Fig. 8 pairwise verdicts (config #1 vs #k, by mean STP) ------ *)
  let better stp_a stp_b = stp_a >= stp_b in
  let pairwise =
    Array.init (n_configs - 1) (fun j ->
        let k = j + 1 in
        (* Index 0 is config #1. *)
        let reference_verdict =
          better reference_mean_stp.(0) reference_mean_stp.(k)
        in
        let mppm_verdict = better mppm_mean_stp.(0) mppm_mean_stp.(k) in
        let tally = Array.make 4 0 in
        for _ = 1 to options.sets do
          let set = category_set_results () in
          let stp_means =
            Array.init n_configs (fun c -> Stats.mean (column set fst c))
          in
          let practice_verdict = better stp_means.(0) stp_means.(k) in
          let agree = practice_verdict = mppm_verdict in
          let mppm_right = mppm_verdict = reference_verdict in
          let bucket =
            match (agree, mppm_right) with
            | true, true -> 0 (* agree, both right *)
            | true, false -> 1 (* agree, both wrong *)
            | false, true -> 2 (* disagree, MPPM right *)
            | false, false -> 3 (* disagree, practice right *)
          in
          tally.(bucket) <- tally.(bucket) + 1
        done;
        let frac i = float_of_int tally.(i) /. float_of_int options.sets in
        {
          other_config = config_ids.(k);
          agree_both_right = frac 0;
          agree_both_wrong = frac 1;
          disagree_mppm_right = frac 2;
          disagree_practice_right = frac 3;
        })
  in
  {
    options;
    config_ids;
    reference_mean_stp;
    reference_mean_antt;
    mppm_mean_stp;
    mppm_mean_antt;
    random_sets;
    category_sets;
    mppm_eval;
    pairwise;
  }

let pp_sets ppf label sets =
  Format.fprintf ppf "%s sets (STP rho / ANTT rho):@." label;
  Array.iteri
    (fun i s ->
      Format.fprintf ppf "  set %2d: %6.3f / %6.3f@." (i + 1) s.stp_rho
        s.antt_rho)
    sets;
  let stp = Array.map (fun s -> s.stp_rho) sets in
  let antt = Array.map (fun s -> s.antt_rho) sets in
  Format.fprintf ppf "  avg   : %6.3f / %6.3f  (min %.3f / %.3f)@."
    (Stats.mean stp) (Stats.mean antt)
    (fst (Stats.min_max stp))
    (fst (Stats.min_max antt))

let pp_fig7 ppf t =
  Format.fprintf ppf
    "# Fig.7 rank correlation vs reference (detailed, %d mixes)@."
    t.options.random_pool;
  Format.fprintf ppf "config:        ";
  Array.iter (Format.fprintf ppf "   #%d   ") t.config_ids;
  Format.fprintf ppf "@.reference STP: ";
  Array.iter (Format.fprintf ppf "%7.3f") t.reference_mean_stp;
  Format.fprintf ppf "@.reference ANTT:";
  Array.iter (Format.fprintf ppf "%7.3f") t.reference_mean_antt;
  Format.fprintf ppf "@.MPPM STP:      ";
  Array.iter (Format.fprintf ppf "%7.3f") t.mppm_mean_stp;
  Format.fprintf ppf "@.MPPM ANTT:     ";
  Array.iter (Format.fprintf ppf "%7.3f") t.mppm_mean_antt;
  Format.fprintf ppf "@.@.";
  pp_sets ppf "(a) random" t.random_sets;
  pp_sets ppf "(b) per-category" t.category_sets;
  Format.fprintf ppf "MPPM (%d mixes): %.3f / %.3f@." t.options.mppm_mixes
    t.mppm_eval.stp_rho t.mppm_eval.antt_rho

let pp_fig8 ppf t =
  Format.fprintf ppf
    "# Fig.8 config #1 vs #k: current practice vs MPPM (fractions of %d \
     sets)@."
    t.options.sets;
  Format.fprintf ppf "%8s %12s %12s %14s %16s@." "pair" "agree-right"
    "agree-wrong" "disagr-MPPM-rt" "disagr-practice-rt";
  Array.iter
    (fun p ->
      Format.fprintf ppf "#1 vs #%d %11.0f%% %11.0f%% %13.0f%% %15.0f%%@."
        p.other_config
        (100.0 *. p.agree_both_right)
        (100.0 *. p.agree_both_wrong)
        (100.0 *. p.disagree_mppm_right)
        (100.0 *. p.disagree_practice_right))
    t.pairwise
