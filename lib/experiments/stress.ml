module Model = Mppm_core.Model

type t = {
  sorted : (float * float) array;
  worst_k : int;
  overlap : int;
  per_benchmark_slowdown : (string * float * float) array;
}

let analyze ?worst_k (run : Accuracy.run) =
  let evals = run.Accuracy.evals in
  let n = Array.length evals in
  if n = 0 then invalid_arg "Stress.analyze: empty population";
  let worst_k =
    match worst_k with Some k -> max 1 (min k n) | None -> max 1 (n / 6)
  in
  let order = Array.init n (fun i -> i) in
  let measured_stp i = evals.(i).Accuracy.measured.Context.m_stp in
  let predicted_stp i = evals.(i).Accuracy.predicted.Model.stp in
  Array.sort (fun a b -> compare (measured_stp a) (measured_stp b)) order;
  let sorted =
    Array.map (fun i -> (measured_stp i, predicted_stp i)) order
  in
  let worst_measured =
    Array.to_list (Array.sub order 0 worst_k) |> List.sort_uniq compare
  in
  let by_predicted = Array.init n (fun i -> i) in
  Array.sort
    (fun a b -> compare (predicted_stp a) (predicted_stp b))
    by_predicted;
  let worst_predicted =
    Array.to_list (Array.sub by_predicted 0 worst_k) |> List.sort_uniq compare
  in
  let overlap =
    List.length (List.filter (fun i -> List.mem i worst_predicted) worst_measured)
  in
  (* Per-benchmark maximum slowdown across the population. *)
  let table : (string, float * float) Hashtbl.t = Hashtbl.create ~random:false 32 in
  Array.iter
    (fun e ->
      Array.iteri
        (fun i p ->
          let name = p.Model.name in
          let measured = e.Accuracy.measured.Context.m_slowdowns.(i) in
          let predicted = p.Model.slowdown in
          let best_m, best_p =
            Option.value (Hashtbl.find_opt table name) ~default:(0.0, 0.0)
          in
          Hashtbl.replace table name
            (Float.max best_m measured, Float.max best_p predicted))
        e.Accuracy.predicted.Model.programs)
    evals;
  let per_benchmark_slowdown =
    Hashtbl.fold (fun name (m, p) acc -> (name, m, p) :: acc) table []
    |> List.sort (fun (_, m1, _) (_, m2, _) -> compare m2 m1)
    |> Array.of_list
  in
  { sorted; worst_k; overlap; per_benchmark_slowdown }

let pp_sorted ppf t =
  Format.fprintf ppf "# Fig.9: mixes sorted by measured STP@.";
  Format.fprintf ppf "# rank measured predicted@.";
  Array.iteri
    (fun i (m, p) -> Format.fprintf ppf "%5d %8.3f %8.3f@." (i + 1) m p)
    t.sorted

let pp_summary ppf t =
  Format.fprintf ppf
    "MPPM identifies %d of the %d worst-STP workloads.@." t.overlap t.worst_k;
  Format.fprintf ppf "max slowdown per benchmark (measured / predicted):@.";
  Array.iter
    (fun (name, m, p) ->
      if m > 1.05 then
        Format.fprintf ppf "  %-12s %5.2fx / %5.2fx@." name m p)
    t.per_benchmark_slowdown
