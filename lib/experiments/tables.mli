(** Tables 1 and 2 of the paper: the simulated machine. *)

val pp_table1 : Format.formatter -> Mppm_simcore.Core_model.params -> unit
(** The baseline processor configuration: core parameters plus the Table 1
    hierarchy with LLC config #1. *)

val pp_table2 : Format.formatter -> unit -> unit
(** The six LLC configurations. *)
