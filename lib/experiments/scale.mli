(** Experiment scale: trace and interval lengths.

    The paper uses 1B-instruction traces with 20M-instruction intervals
    (50 per trace), L = 200M (trace/5) and a 5-trace stop criterion.  Pure
    OCaml detailed simulation of hundreds of billion-instruction mixes is
    not feasible, so experiments run at a reduced scale with the same
    ratios; the cache geometries stay at paper scale and the synthetic
    benchmarks are calibrated against them. *)

type t = {
  trace_instructions : int;  (* mppm: unit insns *)
  interval_instructions : int;  (** trace / 50, as in the paper *)  (* mppm: unit insns *)
}

val of_trace : int -> t  (* mppm: unit insns -> scale *)
(** [of_trace n] rounds [n] up to a multiple of 50 and derives the interval
    length (trace/50). *)

val default : t  (* mppm: unit scale *)
(** 2M-instruction traces (1:500 of the paper): detailed simulation of a
    quad-core mix takes a couple of seconds, so population experiments
    finish in minutes. *)

val quick : t  (* mppm: unit scale *)
(** 1M-instruction traces for smoke runs. *)

val large : t  (* mppm: unit scale *)
(** 10M-instruction traces (1:100 of the paper) for overnight-quality
    numbers. *)

val pp : Format.formatter -> t -> unit
(** "trace 2.0M, interval 40.0K"-style rendering. *)
