module Configs = Mppm_cache.Configs
module Hierarchy = Mppm_cache.Hierarchy
module Geometry = Mppm_cache.Geometry
module Core_model = Mppm_simcore.Core_model

let pp_table1 ppf core =
  Format.fprintf ppf "# Table 1: baseline processor configuration@.";
  Format.fprintf ppf "core        %a@." Core_model.pp core;
  Format.fprintf ppf "%a@." Hierarchy.pp_config (Configs.baseline ())

let pp_table2 ppf () =
  Format.fprintf ppf "# Table 2: last-level cache configurations@.";
  Format.fprintf ppf "%-10s %8s %6s %8s@." "config" "size" "assoc" "latency";
  for i = 1 to Configs.llc_config_count do
    let level = Configs.llc_config i in
    Format.fprintf ppf "%-10s %8s %6d %8d@."
      (Configs.llc_config_name i)
      (Geometry.describe_size level.Hierarchy.geometry.Geometry.size_bytes)
      level.Hierarchy.geometry.Geometry.associativity level.Hierarchy.latency
  done
