module Stats = Mppm_util.Stats
module Sampler = Mppm_workload.Sampler
module Model = Mppm_core.Model

type point = {
  mixes : int;
  stp : Stats.interval;
  antt : Stats.interval;
}

type t = { cores : int; llc_config : int; points : point list }

let run ctx ?pool ?(llc_config = 1) ?(cores = 4) ?(max_mixes = 150) ?(step = 10)
    () =
  if max_mixes < 2 || step < 1 then invalid_arg "Variability.run";
  let rng = Context.rng ctx "variability" in
  let mixes = Sampler.random_mixes rng ~cores ~count:max_mixes in
  let results =
    match pool with
    | Some pool -> Mppm_pool.Pool.map pool (Context.predict ctx ~llc_config) mixes
    | None -> Array.map (Context.predict ctx ~llc_config) mixes
  in
  let stps = Array.map (fun r -> r.Model.stp) results in
  let antts = Array.map (fun r -> r.Model.antt) results in
  let points = ref [] in
  let n = ref step in
  while !n <= max_mixes do
    let take a = Array.sub a 0 !n in
    points :=
      {
        mixes = !n;
        stp = Stats.confidence_interval (take stps);
        antt = Stats.confidence_interval (take antts);
      }
      :: !points;
    n := !n + step
  done;
  { cores; llc_config; points = List.rev !points }

let pp ppf t =
  Format.fprintf ppf
    "# Fig.3 variability: %d cores, config #%d (95%% CI of the mean)@."
    t.cores t.llc_config;
  Format.fprintf ppf "%6s  %8s %8s %6s  %8s %8s %6s@." "mixes" "STP" "+/-"
    "rel" "ANTT" "+/-" "rel";
  List.iter
    (fun p ->
      Format.fprintf ppf "%6d  %8.3f %8.3f %5.1f%%  %8.3f %8.3f %5.1f%%@."
        p.mixes p.stp.Stats.mean p.stp.Stats.half_width
        (100.0 *. Stats.relative_half_width p.stp)
        p.antt.Stats.mean p.antt.Stats.half_width
        (100.0 *. Stats.relative_half_width p.antt))
    t.points
