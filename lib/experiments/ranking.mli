(** Figs. 7 and 8: debunking current practice.

    Six LLC configurations (Table 2) are ranked by mean STP/ANTT.  The
    {e reference} ranking comes from detailed simulation of a pool of
    random mixes (the paper's 150).  {e Current practice} is emulated by
    small sets of 12 mixes — fully random (Fig. 7a) or 4 MEM / 4 COMP /
    4 MIX within benchmark categories (Fig. 7b) — each scored by the
    Spearman rank correlation of its ranking against the reference.  MPPM
    ranks the configurations from a large predicted population.  Fig. 8
    compares config #1 pairwise against #2..#6: how often current practice
    disagrees with MPPM, and who is right against the reference. *)

type options = {
  cores : int;
  random_pool : int;
      (** detailed-simulated random mixes; also the reference population *)
  category_pool_per_composition : int;
      (** detailed-simulated mixes per MEM/COMP/MIX composition *)
  sets : int;  (** number of current-practice sets (paper: 20) *)
  per_set : int;  (** mixes per random set (paper: 12) *)
  per_composition : int;  (** mixes per composition in a category set (4) *)
  mppm_mixes : int;  (** size of the MPPM-predicted population (paper: 5000) *)
}

val default_options : options
(** Sized so the experiment finishes in minutes at the default scale
    (random pool 36, 1,000 MPPM mixes). *)

val paper_options : options
(** The paper's numbers: 150 reference mixes, 20 sets of 12, 5,000 MPPM
    mixes. *)

type set_eval = { stp_rho : float; antt_rho : float }
(** Spearman rank correlations of one set's config ranking against the
    reference ranking. *)

(** Fig. 8 tallies for one config pair (#1 vs [other_config]): how often
    current practice and MPPM agree/disagree on the winner, and who matches
    the reference when they disagree (fractions of sets). *)
type pair_outcome = {
  other_config : int;
  agree_both_right : float;  (* mppm: unit 1 *)
  agree_both_wrong : float;  (* mppm: unit 1 *)
  disagree_mppm_right : float;  (* mppm: unit 1 *)
  disagree_practice_right : float;  (* mppm: unit 1 *)
}

type t = {
  options : options;
  config_ids : int array;
  reference_mean_stp : float array;  (** per config, detailed simulation *)  (* mppm: unit 1 *)
  reference_mean_antt : float array;  (* mppm: unit 1 *)
  mppm_mean_stp : float array;  (** per config, MPPM population *)  (* mppm: unit 1 *)
  mppm_mean_antt : float array;  (* mppm: unit 1 *)
  random_sets : set_eval array;  (** Fig. 7(a) bars *)
  category_sets : set_eval array;  (** Fig. 7(b) bars *)
  mppm_eval : set_eval;  (** the MPPM bar *)
  pairwise : pair_outcome array;  (** Fig. 8, config #1 vs each other *)
}

val run : ?pool:Mppm_pool.Pool.t -> Context.t -> options -> t
(** Runs the whole experiment: reference pool, current-practice sets and
    the MPPM population, on LLC configs #1..#6.  [pool] fans the detailed
    reference/category sweeps and the MPPM population out over worker
    domains; all mixes are pre-drawn, so the result is bit-for-bit
    identical to the sequential run. *)

val pp_fig7 : Format.formatter -> t -> unit
(** Rank-correlation bars: random sets, category sets, MPPM. *)

val pp_fig8 : Format.formatter -> t -> unit
(** Pairwise agree/disagree table, config #1 vs each other config. *)
