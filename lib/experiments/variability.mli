(** Fig. 3: variability of mean STP/ANTT as a function of the number of
    workload mixes.

    The paper's point: 10 random mixes leave ~10%/18% (STP/ANTT) 95%
    confidence intervals; even 20 leave ~7%/13%; only around 150 do the
    bounds tighten to ~2.6%/4.5%.  We reproduce the curve with MPPM
    predictions over a large sample of quad-core mixes (the model's speed
    is what makes the large sample affordable — the figure's message does
    not depend on which evaluator produced the per-mix numbers). *)

type point = {
  mixes : int;
  stp : Mppm_util.Stats.interval;
  antt : Mppm_util.Stats.interval;
}
(** Mean STP/ANTT confidence intervals over the first [mixes] mixes. *)

type t = {
  cores : int;
  llc_config : int;
  points : point list;  (** increasing mix counts *)
}

val run :
  Context.t ->
  ?pool:Mppm_pool.Pool.t ->
  ?llc_config:int ->
  ?cores:int ->
  ?max_mixes:int ->
  ?step:int ->
  unit ->
  t
(** [run ctx ()] predicts [max_mixes] (default 150) random quad-core mixes
    and reports the 95% confidence interval of mean STP and mean ANTT over
    the first [n] mixes for [n] in steps of [step] (default 10).  [pool]
    evaluates the pre-drawn mixes in parallel; the points are bit-for-bit
    identical to the sequential run. *)

val pp : Format.formatter -> t -> unit
(** Series rows: n, STP mean and CI half-width (abs and %), same for
    ANTT. *)
