type t = { trace_instructions : int; interval_instructions : int }

let intervals_per_trace = 50

let of_trace n =
  if n <= 0 then invalid_arg "Scale.of_trace: non-positive trace length";
  let interval = (n + intervals_per_trace - 1) / intervals_per_trace in
  { trace_instructions = interval * intervals_per_trace;
    interval_instructions = interval }

let default = of_trace 2_000_000
let quick = of_trace 1_000_000
let large = of_trace 10_000_000

let pp ppf t =
  Format.fprintf ppf "%dK-instruction traces, %dK-instruction intervals"
    (t.trace_instructions / 1000)
    (t.interval_instructions / 1000)
