module Suite = Mppm_trace.Suite
module Single_core = Mppm_simcore.Single_core
module Sampler = Mppm_workload.Sampler

type t = {
  profile_seconds : float;
  one_time_cost_seconds : float;
  detailed_seconds_per_mix : (int * float) list;
  mppm_seconds_per_mix : float;
  speedup_model_only : (int * float) list;
  speedup_study_150 : (int * float) list;
}

(* This module's whole purpose is measuring wall-clock speedups (Fig. 1 /
   Table 3), so the timer reads are intentional; timings are reported, never
   fed back into model state. *)
let time f =
  (* lint: allow D1 *)
  let t0 = Sys.time () in
  let result = f () in
  (* lint: allow D1 *)
  (Sys.time () -. t0, result)

let measure ctx ?(cores_list = [ 2; 4; 8 ]) ?(sim_mixes = 3)
    ?(model_mixes = 50) () =
  let rng = Context.rng ctx "speed" in
  let scale = Context.scale ctx in
  (* Fresh profiling run (bypasses the context cache deliberately). *)
  let profile_seconds, _ =
    time (fun () ->
        Single_core.profile
          (Single_core.config (Context.hierarchy ctx ~llc_config:1))
          ~benchmark:(Suite.find "soplex")
          ~seed:(Suite.seed_for "soplex")
          ~trace_instructions:scale.Scale.trace_instructions
          ~interval_instructions:scale.Scale.interval_instructions)
  in
  let one_time_cost_seconds = profile_seconds *. float_of_int Suite.count in
  let detailed_seconds_per_mix =
    List.map
      (fun cores ->
        let mixes = Sampler.random_mixes rng ~cores ~count:sim_mixes in
        let seconds, _ =
          time (fun () ->
              Array.iter
                (fun mix -> ignore (Context.detailed ctx ~llc_config:1 mix))
                mixes)
        in
        (cores, seconds /. float_of_int sim_mixes))
      cores_list
  in
  (* Warm the profile cache before timing the model alone. *)
  ignore (Context.all_profiles ctx ~llc_config:1);
  let model_mix_set = Sampler.random_mixes rng ~cores:4 ~count:model_mixes in
  let model_seconds, _ =
    time (fun () ->
        Array.iter
          (fun mix -> ignore (Context.predict ctx ~llc_config:1 mix))
          model_mix_set)
  in
  let mppm_seconds_per_mix = model_seconds /. float_of_int model_mixes in
  let speedup_model_only =
    List.map
      (fun (cores, s) -> (cores, s /. mppm_seconds_per_mix))
      detailed_seconds_per_mix
  in
  let speedup_study_150 =
    List.map
      (fun (cores, s) ->
        let detailed_study = 150.0 *. s in
        let mppm_study =
          one_time_cost_seconds +. (150.0 *. mppm_seconds_per_mix)
        in
        (cores, detailed_study /. mppm_study))
      detailed_seconds_per_mix
  in
  {
    profile_seconds;
    one_time_cost_seconds;
    detailed_seconds_per_mix;
    mppm_seconds_per_mix;
    speedup_model_only;
    speedup_study_150;
  }

let pp ppf t =
  Format.fprintf ppf "single-core profiling: %.2fs per benchmark (one-time %.1fs for the suite)@."
    t.profile_seconds t.one_time_cost_seconds;
  Format.fprintf ppf "MPPM prediction: %.4fs per mix@." t.mppm_seconds_per_mix;
  List.iter
    (fun (cores, s) ->
      let model_only = List.assoc cores t.speedup_model_only in
      let study = List.assoc cores t.speedup_study_150 in
      Format.fprintf ppf
        "%2d cores: detailed %.2fs/mix; MPPM speedup %.0fx (model only), \
         %.1fx (150-mix study incl. one-time profiling)@."
        cores s model_only study)
    t.detailed_seconds_per_mix
