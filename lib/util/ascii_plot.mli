(** Terminal plotting for the benchmark harness: the paper's scatter plots
    (predicted vs measured, Figs. 4-5) and line series (Figs. 3 and 9)
    rendered as text grids, so a bench run shows the figures' shapes
    directly. *)

val scatter :
  ?width:int ->
  ?height:int ->
  ?diagonal:bool ->
  ?x_label:string ->
  ?y_label:string ->
  (float * float) array ->
  string
(** [scatter points] renders an x-y scatter ([width] x [height] characters,
    defaults 60 x 20).  [diagonal] (default false) marks the y = x bisector
    — perfect predictions sit on it.  Returns a multi-line string; empty
    input yields a note instead of a plot. *)

val series :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  (string * float array) list ->
  string
(** [series named_series] plots one glyph per series against the common
    index axis (series may have different lengths).  The first series uses
    '*', the second '+', then 'o', 'x', '#'. *)
