(** Runtime invariant sanitizer for the model core.

    Cheap, env-gated assertion points: when [MPPM_SANITIZE=1] (or [true],
    [yes], [on]) is set, checkpoints sprinkled through the simulators and
    the analytical model count invariant violations instead of aborting
    mid-run, and a one-line report is printed to stderr at process exit.
    When the variable is unset every checkpoint is a single branch, so the
    hot paths stay fast.

    Checkpoints never change model results: they only read state, so a run
    under the sanitizer is bit-for-bit identical to one without (enforced
    by [test/suite_lint.ml]). *)

val enabled : unit -> bool
(** Whether sanitizing is on.  Consults [MPPM_SANITIZE] on first call and
    caches the answer; {!set_enabled} overrides it. *)

val set_enabled : bool -> unit
(** Force sanitizing on or off (used by tests; normal runs use the
    environment variable). *)

val check : string -> bool -> unit
(** [check name ok] records a pass or a violation of the named invariant.
    No-op when disabled.  [name] should be stable and dotted, e.g.
    ["simcore.cycles_monotone"]. *)

val checkf : string -> bool -> (unit -> string) -> unit
(** [checkf name ok detail] is {!check} but additionally records
    [detail ()] for the first violation of [name], for the exit report.
    [detail] is only forced on a violation. *)

val checks_run : unit -> int
(** Total checkpoint evaluations recorded so far. *)

val violations : unit -> int
(** Total violations recorded so far. *)

val report : unit -> string
(** The one-line summary, e.g.
    ["[mppm-sanitize] 123456 checks, 0 violations"]; violated invariants
    are listed as [name=count] pairs with the first recorded detail. *)

val reset : unit -> unit
(** Clear all counters (used by tests). *)
