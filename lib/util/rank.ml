let ranks a =
  let n = Array.length a in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare a.(i) a.(j)) order;
  let result = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    (* Find the run of tied values starting at sorted position !i. *)
    let j = ref !i in
    while !j + 1 < n && a.(order.(!j + 1)) = a.(order.(!i)) do incr j done;
    (* Mid-rank: average of 1-based ranks i+1 .. j+1. *)
    let mid_rank = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      result.(order.(k)) <- mid_rank
    done;
    i := !j + 1
  done;
  result

let pearson a b =
  let n = Array.length a in
  if n < 2 || n <> Array.length b then
    invalid_arg "Rank.pearson: arrays must have equal length >= 2";
  let nf = float_of_int n in
  let mean_a = Array.fold_left ( +. ) 0.0 a /. nf in
  let mean_b = Array.fold_left ( +. ) 0.0 b /. nf in
  let cov = ref 0.0 and var_a = ref 0.0 and var_b = ref 0.0 in
  for i = 0 to n - 1 do
    let da = a.(i) -. mean_a and db = b.(i) -. mean_b in
    cov := !cov +. (da *. db);
    var_a := !var_a +. (da *. da);
    var_b := !var_b +. (db *. db)
  done;
  (* The variances are sums of squares, so <= 0 is exactly the zero case. *)
  if !var_a <= 0.0 || !var_b <= 0.0 then nan
  else !cov /. sqrt (!var_a *. !var_b)

let spearman a b = pearson (ranks a) (ranks b)

let rank_order a =
  let n = Array.length a in
  let order = Array.init n (fun i -> i) in
  (* Stable sort keeps original order on ties. *)
  let order_list = Array.to_list order in
  let sorted =
    List.stable_sort (fun i j -> compare a.(j) a.(i)) order_list
  in
  Array.of_list sorted

let argmax a =
  if Array.length a = 0 then invalid_arg "Rank.argmax: empty array";
  let best = ref 0 in
  Array.iteri (fun i x -> if x > a.(!best) then best := i) a;
  !best

let argmin a =
  if Array.length a = 0 then invalid_arg "Rank.argmin: empty array";
  let best = ref 0 in
  Array.iteri (fun i x -> if x < a.(!best) then best := i) a;
  !best
