(** Descriptive statistics and confidence intervals.

    The paper reports 95% confidence intervals over populations of
    workload mixes (Fig. 3) and average relative errors between predicted
    and measured metrics (Sec. 4.2); this module provides those
    primitives. *)

(* lint: allow S4 rule F1's recommended comparison helper *)
val approx_equal : ?eps:float -> float -> float -> bool
(** [approx_equal a b] is true when [a] and [b] differ by at most [eps]
    (default [1e-9]) scaled by the larger of 1 and their magnitudes — the
    explicit alternative to polymorphic [=] on floats, which the mppm-lint
    [F1] rule rejects.  Use [Float.equal] instead when exact (bitwise-value)
    comparison is the intended semantics. *)

(* lint: allow S4 rule F1's recommended comparison helper *)
val is_zero : ?eps:float -> float -> bool
(** [is_zero x] is [approx_equal x 0.0] with an absolute (unscaled)
    tolerance of [eps], default [1e-9]. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (divides by n-1).  Requires at least two
    samples. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive samples. *)

val harmonic_mean : float array -> float
(** Harmonic mean of strictly positive samples. *)

val min_max : float array -> float * float
(** Smallest and largest sample. *)

val percentile : float array -> p:float -> float
(** [percentile a ~p] is the [p]-th percentile (0 <= p <= 100) using linear
    interpolation between order statistics. *)

val median : float array -> float
(** 50th percentile. *)

type interval = {
  mean : float;
  lower : float;  (** lower bound of the confidence interval *)
  upper : float;  (** upper bound of the confidence interval *)
  half_width : float;  (** [upper - mean], i.e. the interval half-width *)
  samples : int;
}
(** A two-sided confidence interval around a sample mean. *)

val confidence_interval : ?level:float -> float array -> interval
(** [confidence_interval ~level a] is the Student-t confidence interval for
    the population mean at confidence [level] (default [0.95]).  Requires at
    least two samples. *)

val relative_half_width : interval -> float
(** Interval half-width as a fraction of the mean: the "x% confidence
    interval" number the paper quotes in Sec. 4.1. *)

val mean_relative_error : predicted:float array -> measured:float array -> float
(** [mean_relative_error ~predicted ~measured] is the average of
    [|predicted.(i) - measured.(i)| / measured.(i)], the paper's accuracy
    metric.  Arrays must have equal non-zero length. *)

val max_relative_error : predicted:float array -> measured:float array -> float
(** Largest single relative error. *)

val running_mean_series :
  float array -> (int * float) list
(** [running_mean_series a] is the prefix means [(1, mean a.(0..0)); ...],
    used to show convergence as sample count grows. *)
