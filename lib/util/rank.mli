(** Rank statistics: Spearman rank correlation (with tie handling) and
    ranking helpers.

    Fig. 7 of the paper scores how well a small random workload sample
    ranks six LLC configurations against the reference ranking, using the
    Spearman rank correlation coefficient. *)

val ranks : float array -> float array
(** [ranks a] assigns rank 1 to the smallest element; tied values receive
    the average of the ranks they span (mid-rank method). *)

val spearman : float array -> float array -> float
(** [spearman a b] is the Spearman rank correlation coefficient of the two
    samples, computed as the Pearson correlation of their mid-ranks, which
    handles ties correctly.  Arrays must have equal length >= 2.  Returns a
    value in [\[-1, 1\]]; returns [nan] if either sample is constant. *)

val pearson : float array -> float array -> float
(** Pearson product-moment correlation coefficient. *)

val rank_order : float array -> int array
(** [rank_order a] is the permutation of indices that sorts [a] in
    decreasing order, i.e. [rank_order a |> Array.get 0] is the index of
    the best (largest) value.  Ties keep their original relative order. *)

val argmax : float array -> int
(** Index of the largest element (first on ties). *)

val argmin : float array -> int
(** Index of the smallest element (first on ties). *)
