(* Lanczos approximation, g = 7, n = 9 coefficients.  Accurate to ~1e-13 for
   x > 0, which is far more than the statistics layer needs. *)
let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: x <= 0"
  else if x < 0.5 then
    (* Reflection formula keeps the Lanczos series in its accurate range. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else
    let x = x -. 1.0 in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc

(* Continued fraction for the incomplete beta function (Numerical Recipes
   "betacf"), evaluated with the modified Lentz algorithm. *)
let beta_continued_fraction ~a ~b ~x =
  let max_iterations = 300 in
  let eps = 3e-14 in
  let fp_min = 1e-300 in
  let qab = a +. b in
  let qap = a +. 1.0 in
  let qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if abs_float !d < fp_min then d := fp_min;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let converged = ref false in
  while (not !converged) && !m <= max_iterations do
    let mf = float_of_int !m in
    let m2 = 2.0 *. mf in
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if abs_float !d < fp_min then d := fp_min;
    c := 1.0 +. (aa /. !c);
    if abs_float !c < fp_min then c := fp_min;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1.0 +. (aa *. !d);
    if abs_float !d < fp_min then d := fp_min;
    c := 1.0 +. (aa /. !c);
    if abs_float !c < fp_min then c := fp_min;
    d := 1.0 /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if abs_float (delta -. 1.0) < eps then converged := true;
    incr m
  done;
  !h

let incomplete_beta ~a ~b ~x =
  if x < 0.0 || x > 1.0 then invalid_arg "Special.incomplete_beta: x not in [0,1]";
  if a <= 0.0 || b <= 0.0 then invalid_arg "Special.incomplete_beta: a,b must be > 0";
  (* The domain check above makes <= / >= exactly the boundary cases. *)
  if x <= 0.0 then 0.0
  else if x >= 1.0 then 1.0
  else
    let log_front =
      log_gamma (a +. b) -. log_gamma a -. log_gamma b
      +. (a *. log x) +. (b *. log (1.0 -. x))
    in
    let front = exp log_front in
    (* Use the continued fraction directly where it converges fast, the
       symmetry transformation elsewhere. *)
    if x < (a +. 1.0) /. (a +. b +. 2.0) then
      front *. beta_continued_fraction ~a ~b ~x /. a
    else
      1.0 -. (front *. beta_continued_fraction ~a:b ~b:a ~x:(1.0 -. x) /. b)

let student_t_cdf ~df t =
  if df <= 0.0 then invalid_arg "Special.student_t_cdf: df <= 0";
  let x = df /. (df +. (t *. t)) in
  let p = 0.5 *. incomplete_beta ~a:(df /. 2.0) ~b:0.5 ~x in
  if t > 0.0 then 1.0 -. p else p

let student_t_quantile ~df p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Special.student_t_quantile: p not in (0,1)";
  if Float.equal p 0.5 then 0.0
  else
    (* Bisection on the CDF: robust, and quantiles are computed rarely. *)
    let rec widen hi =
      if student_t_cdf ~df hi >= max p (1.0 -. p) then hi else widen (hi *. 2.0)
    in
    let bound = widen 2.0 in
    let lo = ref (-.bound) and hi = ref bound in
    for _ = 1 to 200 do
      let mid = 0.5 *. (!lo +. !hi) in
      if student_t_cdf ~df mid < p then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)

(* Abramowitz & Stegun 7.1.26-style rational approximation refined with one
   continued-fraction-free correction; relative error ~1e-7, plenty for
   normal-CDF use in tests. *)
let erfc x =
  let z = abs_float x in
  let t = 1.0 /. (1.0 +. (0.5 *. z)) in
  let poly =
    -1.26551223
    +. (t *. (1.00002368
    +. (t *. (0.37409196
    +. (t *. (0.09678418
    +. (t *. (-0.18628806
    +. (t *. (0.27886807
    +. (t *. (-1.13520398
    +. (t *. (1.48851587
    +. (t *. (-0.82215223
    +. (t *. 0.17087277)))))))))))))))))
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0.0 then ans else 2.0 -. ans

let normal_cdf x = 0.5 *. erfc (-.x /. sqrt 2.0)
