let ensure_nonempty name a =
  if Array.length a = 0 then invalid_arg (name ^ ": empty sample")

let approx_equal ?(eps = 1e-9) a b =
  Float.abs (a -. b)
  <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let is_zero ?(eps = 1e-9) x = Float.abs x <= eps

let mean a =
  ensure_nonempty "Stats.mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  if Array.length a < 2 then invalid_arg "Stats.variance: need >= 2 samples";
  let m = mean a in
  let sum_sq = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
  sum_sq /. float_of_int (Array.length a - 1)

let stddev a = sqrt (variance a)

let geometric_mean a =
  ensure_nonempty "Stats.geometric_mean" a;
  let log_sum =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive sample"
        else acc +. log x)
      0.0 a
  in
  exp (log_sum /. float_of_int (Array.length a))

let harmonic_mean a =
  ensure_nonempty "Stats.harmonic_mean" a;
  let inv_sum =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.harmonic_mean: non-positive sample"
        else acc +. (1.0 /. x))
      0.0 a
  in
  float_of_int (Array.length a) /. inv_sum

let min_max a =
  ensure_nonempty "Stats.min_max" a;
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (a.(0), a.(0)) a

let percentile a ~p =
  ensure_nonempty "Stats.percentile" a;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p not in [0,100]";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median a = percentile a ~p:50.0

type interval = {
  mean : float;
  lower : float;
  upper : float;
  half_width : float;
  samples : int;
}

let confidence_interval ?(level = 0.95) a =
  if Array.length a < 2 then
    invalid_arg "Stats.confidence_interval: need >= 2 samples";
  if not (level > 0.0 && level < 1.0) then
    invalid_arg "Stats.confidence_interval: level not in (0,1)";
  let n = Array.length a in
  let m = mean a in
  let s = stddev a in
  let df = float_of_int (n - 1) in
  let t = Special.student_t_quantile ~df (1.0 -. ((1.0 -. level) /. 2.0)) in
  let half_width = t *. s /. sqrt (float_of_int n) in
  { mean = m; lower = m -. half_width; upper = m +. half_width; half_width; samples = n }

let relative_half_width iv =
  if Float.equal iv.mean 0.0 then
    invalid_arg "Stats.relative_half_width: zero mean"
  else iv.half_width /. abs_float iv.mean

let check_paired name predicted measured =
  let n = Array.length predicted in
  if n = 0 || n <> Array.length measured then
    invalid_arg (name ^ ": arrays must have equal non-zero length")

let mean_relative_error ~predicted ~measured =
  check_paired "Stats.mean_relative_error" predicted measured;
  let n = Array.length predicted in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    if Float.equal measured.(i) 0.0 then
      invalid_arg "Stats.mean_relative_error: zero measured value";
    total := !total +. (abs_float (predicted.(i) -. measured.(i)) /. abs_float measured.(i))
  done;
  !total /. float_of_int n

let max_relative_error ~predicted ~measured =
  check_paired "Stats.max_relative_error" predicted measured;
  let worst = ref 0.0 in
  Array.iteri
    (fun i p ->
      if Float.equal measured.(i) 0.0 then
        invalid_arg "Stats.max_relative_error: zero measured value";
      let e = abs_float (p -. measured.(i)) /. abs_float measured.(i) in
      if e > !worst then worst := e)
    predicted;
  !worst

let running_mean_series a =
  ensure_nonempty "Stats.running_mean_series" a;
  let acc = ref 0.0 in
  Array.to_list a
  |> List.mapi (fun i x ->
         acc := !acc +. x;
         (i + 1, !acc /. float_of_int (i + 1)))
