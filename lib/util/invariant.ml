type point = {
  mutable passes : int;
  mutable fails : int;
  mutable first_detail : string option;
}

let points : (string, point) Hashtbl.t = Hashtbl.create ~random:false 16
let state = ref None

let enabled () =
  match !state with
  | Some b -> b
  | None ->
      let b =
        match Sys.getenv_opt "MPPM_SANITIZE" with
        | Some ("1" | "true" | "yes" | "on") -> true
        | Some _ | None -> false
      in
      state := Some b;
      b

let set_enabled b = state := Some b

let point name =
  match Hashtbl.find_opt points name with
  | Some p -> p
  | None ->
      let p = { passes = 0; fails = 0; first_detail = None } in
      Hashtbl.add points name p;
      p

let checkf name ok detail =
  if enabled () then begin
    let p = point name in
    if ok then p.passes <- p.passes + 1
    else begin
      p.fails <- p.fails + 1;
      if p.first_detail = None then p.first_detail <- Some (detail ())
    end
  end

let check name ok = checkf name ok (fun () -> "")

let fold f init = Hashtbl.fold (fun name p acc -> f acc name p) points init
let checks_run () = fold (fun acc _ p -> acc + p.passes + p.fails) 0
let violations () = fold (fun acc _ p -> acc + p.fails) 0

let report () =
  let violated =
    fold (fun acc name p -> if p.fails > 0 then (name, p) :: acc else acc) []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let summary =
    Printf.sprintf "[mppm-sanitize] %d checks, %d violations" (checks_run ())
      (violations ())
  in
  match violated with
  | [] -> summary
  | vs ->
      summary ^ ": "
      ^ String.concat ", "
          (List.map
             (fun (name, p) ->
               match p.first_detail with
               | Some d when d <> "" ->
                   Printf.sprintf "%s=%d (%s)" name p.fails d
               | _ -> Printf.sprintf "%s=%d" name p.fails)
             vs)

let reset () = Hashtbl.reset points

let () =
  at_exit (fun () ->
      (* The sanitizer's end-of-process summary has nowhere else to go:
         the process is exiting and stderr is the diagnostic channel. *)
      (* lint: allow O1 *)
      if enabled () && checks_run () > 0 then prerr_endline (report ()))
