(* The generator runs in the hot path of the trace-driven simulators (one
   or more draws per simulated instruction block), so the core is a
   xorshift128+ variant over OCaml's native 63-bit ints: no boxing, no
   Int64 traffic.  Seeding goes through a splitmix-style mixer so that
   small or equal-ish user seeds still yield well-separated states. *)

type t = { mutable a : int; mutable b : int }

(* 63-bit splitmix-style mixer (constants from splitmix64, truncated). *)
let mix z =
  let z = (z + 0x1E3779B97F4A7C15) land max_int in
  let z = (z lxor (z lsr 30)) * 0x1F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  z lxor (z lsr 31)

let create ~seed =
  let s0 = mix (seed land max_int) in
  let s1 = mix s0 in
  let s2 = mix s1 in
  (* Guarantee a non-zero state: xorshift must not start at (0, 0). *)
  let a = if s1 = 0 then 0x9E3779B9 else s1 in
  { a; b = s2 lor 1 }

let copy t = { a = t.a; b = t.b }

(* mppm: unit _ -- raw xorshift bits carry no unit *)
let next t =
  let s1 = t.a and s0 = t.b in
  t.a <- s0;
  let s1 = s1 lxor (s1 lsl 23) in
  let s1 = s1 lxor (s1 lsr 17) lxor s0 lxor (s0 lsr 26) in
  t.b <- s1;
  (s0 + s1) land max_int

let bits64 t =
  (* Two native draws stitched together for API compatibility. *)
  Int64.logor
    (Int64.of_int (next t))
    (Int64.shift_left (Int64.of_int (next t)) 62)

let split t = create ~seed:(next t)

(* mppm: unit _ -- uniform draw carries no unit *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Modulo over 62 random bits: bias is < bound / 2^62, negligible for the
     simulator-sized bounds used here. *)
  next t mod bound

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float_scale = 1.0 /. 9007199254740992.0 (* 2^-53 *)

(* mppm: unit _ -- uniform draw carries no unit *)
let float t bound =
  float_of_int (next t land ((1 lsl 53) - 1)) *. float_scale *. bound

let bool t = next t land 1 = 1
let bernoulli t ~p = float t 1.0 < p

let geometric t ~p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Rng.geometric: p not in (0,1]";
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (floor (log u /. log (1.0 -. p)))

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 0.0 then draw ()
    else
      let u2 = float t 1.0 in
      mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_weighted t ~weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if not (total > 0.0) then invalid_arg "Rng.pick_weighted: weights sum <= 0";
  let target = float t total in
  let n = Array.length weights in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t ~n ~k =
  if k > n || k < 0 then invalid_arg "Rng.sample_without_replacement";
  (* Partial Fisher-Yates over an index array: O(n) setup, O(k) swaps. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = int_in t ~lo:i ~hi:(n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k
