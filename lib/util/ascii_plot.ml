let default_width = 60
let default_height = 20

let bounds values =
  Array.fold_left
    (fun (lo, hi) v -> (Float.min lo v, Float.max hi v))
    (infinity, neg_infinity) values

(* Widen degenerate ranges so everything maps inside the grid. *)
let pad (lo, hi) =
  if hi > lo then (lo, hi)
  else if Float.equal lo 0.0 then (-1.0, 1.0)
  else (lo -. (0.5 *. abs_float lo), hi +. (0.5 *. abs_float hi))

let cell_of value (lo, hi) cells =
  let frac = (value -. lo) /. (hi -. lo) in
  let c = int_of_float (frac *. float_of_int cells) in
  max 0 (min (cells - 1) c)

let render ~width ~height ~x_range ~y_range ~x_label ~y_label ~marks =
  let grid = Array.make_matrix height width ' ' in
  List.iter
    (fun (x, y, glyph) ->
      let col = cell_of x x_range width in
      let row = height - 1 - cell_of y y_range height in
      (* Do not overwrite data glyphs with decoration ('.') marks. *)
      if glyph <> '.' || grid.(row).(col) = ' ' then grid.(row).(col) <- glyph)
    marks;
  let buffer = Buffer.create ((width + 12) * (height + 3)) in
  let y_lo, y_hi = y_range in
  Array.iteri
    (fun row line ->
      let label =
        if row = 0 then Printf.sprintf "%10.3f " y_hi
        else if row = height - 1 then Printf.sprintf "%10.3f " y_lo
        else String.make 11 ' '
      in
      Buffer.add_string buffer label;
      Buffer.add_char buffer '|';
      Buffer.add_string buffer (String.init width (fun c -> line.(c)));
      Buffer.add_char buffer '\n')
    grid;
  Buffer.add_string buffer (String.make 11 ' ');
  Buffer.add_char buffer '+';
  Buffer.add_string buffer (String.make width '-');
  Buffer.add_char buffer '\n';
  let x_lo, x_hi = x_range in
  Buffer.add_string buffer
    (Printf.sprintf "%11s %-10.3f%*s%10.3f\n" "" x_lo (width - 20) "" x_hi);
  (match y_label with
  | "" -> ()
  | l -> Buffer.add_string buffer (Printf.sprintf "  y: %s" l));
  (match x_label with
  | "" -> ()
  | l -> Buffer.add_string buffer (Printf.sprintf "   x: %s" l));
  if x_label <> "" || y_label <> "" then Buffer.add_char buffer '\n';
  Buffer.contents buffer

let scatter ?(width = default_width) ?(height = default_height)
    ?(diagonal = false) ?(x_label = "") ?(y_label = "") points =
  if Array.length points = 0 then "(no points)\n"
  else begin
    let xs = Array.map fst points and ys = Array.map snd points in
    let x_range = pad (bounds xs) and y_range = pad (bounds ys) in
    (* A shared range makes the bisector meaningful. *)
    let x_range, y_range =
      if diagonal then
        let lo = Float.min (fst x_range) (fst y_range) in
        let hi = Float.max (snd x_range) (snd y_range) in
        ((lo, hi), (lo, hi))
      else (x_range, y_range)
    in
    let marks = ref [] in
    if diagonal then begin
      let lo, hi = x_range in
      let steps = 4 * width in
      for i = 0 to steps do
        let v = lo +. ((hi -. lo) *. float_of_int i /. float_of_int steps) in
        marks := (v, v, '.') :: !marks
      done
    end;
    Array.iter (fun (x, y) -> marks := (x, y, '*') :: !marks) points;
    render ~width ~height ~x_range ~y_range ~x_label ~y_label ~marks:!marks
  end

let glyphs = [| '*'; '+'; 'o'; 'x'; '#' |]

let series ?(width = default_width) ?(height = default_height)
    ?(x_label = "") ?(y_label = "") named =
  let named = List.filter (fun (_, v) -> Array.length v > 0) named in
  if named = [] then "(no series)\n"
  else begin
    let all = Array.concat (List.map snd named) in
    let y_range = pad (bounds all) in
    let longest =
      List.fold_left (fun acc (_, v) -> max acc (Array.length v)) 1 named
    in
    let x_range = pad (0.0, float_of_int (longest - 1)) in
    let marks = ref [] in
    List.iteri
      (fun s (_, values) ->
        let glyph = glyphs.(s mod Array.length glyphs) in
        Array.iteri
          (fun i v -> marks := (float_of_int i, v, glyph) :: !marks)
          values)
      named;
    let legend =
      named
      |> List.mapi (fun s (name, _) ->
             Printf.sprintf "%c %s" glyphs.(s mod Array.length glyphs) name)
      |> String.concat "   "
    in
    render ~width ~height ~x_range ~y_range ~x_label ~y_label ~marks:!marks
    ^ "  " ^ legend ^ "\n"
  end
