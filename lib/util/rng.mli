(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    a xorshift128+ variant over native 63-bit integers (the simulators draw
    once or more per instruction block, so the core must not box), seeded
    through a splitmix-style mixer. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams
    obtained by successive splits are statistically independent; use one
    split per benchmark / per experiment arm so that changing the number of
    draws in one arm does not perturb the others. *)

(* lint: allow S4 core draw primitive, part of the documented Rng surface *)
val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

(* lint: allow S4 draw-API completeness, part of the documented Rng surface *)
val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] is the number of failures before the first success of a
    Bernoulli([p]) process; [p] must lie in (0, 1]. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from an exponential distribution. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** [gaussian t ~mu ~sigma] draws from a normal distribution
    (Box-Muller). *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly random element of [a], which must be
    non-empty. *)

val pick_weighted : t -> weights:float array -> int
(** [pick_weighted t ~weights] is an index drawn with probability
    proportional to [weights.(i)].  Weights must be non-negative with a
    positive sum. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val sample_without_replacement : t -> n:int -> k:int -> int array
(** [sample_without_replacement t ~n ~k] is [k] distinct indices drawn
    uniformly from [\[0, n)], in random order.  Requires [k <= n]. *)
