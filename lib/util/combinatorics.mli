(** Counting and enumerating multi-program workload mixes.

    A mix of [m] programs drawn from [n] benchmarks (order irrelevant,
    repetition allowed) is a multiset: there are C(n+m-1, m) of them.  The
    paper's introduction counts 435 dual-core, 35,960 quad-core and more
    than 30.2 million eight-core mixes for 29 SPEC CPU2006 benchmarks. *)

val binomial : int -> int -> float
(** [binomial n k] is the binomial coefficient C(n, k) as a float (exact for
    values representable in 53 bits).  Returns [0.] when [k < 0] or
    [k > n]. *)

(* lint: allow S4 exact integer variant kept alongside the float binomial *)
val binomial_int : int -> int -> int
(** [binomial_int n k] is C(n, k) as a native int.  Raises [Overflow] if the
    result does not fit. *)

exception Overflow
(** Raised by {!binomial_int} when the result exceeds native int range. *)

val multisets_count : n:int -> m:int -> float
(** [multisets_count ~n ~m] is the number of size-[m] multisets over [n]
    elements: C(n+m-1, m). *)

val enumerate_multisets : n:int -> m:int -> int array list
(** [enumerate_multisets ~n ~m] lists every size-[m] multiset over
    [\[0, n)], each as a sorted (non-decreasing) index array, in
    lexicographic order.  Intended for small populations (e.g. all 435
    two-program mixes); raises [Invalid_argument] if the count exceeds
    10 million. *)

val random_multiset : Rng.t -> n:int -> m:int -> int array
(** [random_multiset rng ~n ~m] draws uniformly from all C(n+m-1, m)
    multisets (not by sampling elements independently, which would bias
    toward mixes with repeats ordered differently).  Result is sorted. *)

val random_selection_with_repetition : Rng.t -> n:int -> m:int -> int array
(** [random_selection_with_repetition rng ~n ~m] draws [m] elements
    independently and uniformly from [\[0, n)] and sorts them: the
    distribution over *multisets* that arises when an architect picks each
    slot of the mix at random, which is how "random workload mixes" are
    built in current practice (and in this paper). *)

val rank_multiset : n:int -> int array -> float
(** [rank_multiset ~n mix] is the lexicographic rank of the sorted multiset
    [mix] among all multisets of its size over [n] elements; inverse of
    {!unrank_multiset}. *)

val unrank_multiset : n:int -> m:int -> float -> int array
(** [unrank_multiset ~n ~m r] is the sorted multiset of rank [r] (0-based)
    among all C(n+m-1, m) multisets.  Used to sample uniformly without
    materializing the population. *)
