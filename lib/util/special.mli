(** Special mathematical functions needed by the statistics substrate.

    Implemented from standard numerical recipes: Lanczos log-gamma, the
    continued-fraction regularized incomplete beta function, and from those
    the Student-t distribution functions used for confidence intervals
    (paper Sec. 4.1 reports 95% confidence intervals over workload-mix
    populations). *)

val log_gamma : float -> float
(** [log_gamma x] is ln(Gamma(x)) for [x > 0]. *)

val incomplete_beta : a:float -> b:float -> x:float -> float
(** [incomplete_beta ~a ~b ~x] is the regularized incomplete beta function
    I_x(a, b) for [x] in [\[0, 1\]] and [a, b > 0]. *)

val student_t_cdf : df:float -> float -> float
(** [student_t_cdf ~df t] is P(T <= t) for T Student-t distributed with
    [df] degrees of freedom. *)

val student_t_quantile : df:float -> float -> float
(** [student_t_quantile ~df p] is the inverse of {!student_t_cdf}: the value
    t with P(T <= t) = [p], computed by bisection + Newton refinement.
    Requires [p] in (0, 1). *)

val normal_cdf : float -> float
(** Standard normal CDF via [erfc]. *)

