exception Overflow

let binomial n k =
  if k < 0 || k > n then 0.0
  else
    let k = min k (n - k) in
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    (* The product is exact as long as intermediate values stay within 53
       bits; rounding keeps results integral in the exact range. *)
    Float.round !acc

let binomial_int n k =
  let f = binomial n k in
  if f > float_of_int max_int then raise Overflow else int_of_float f

let multisets_count ~n ~m = binomial (n + m - 1) m

let enumerate_multisets ~n ~m =
  if n <= 0 || m <= 0 then invalid_arg "Combinatorics.enumerate_multisets";
  if multisets_count ~n ~m > 2_000_000.0 then
    invalid_arg "Combinatorics.enumerate_multisets: population too large";
  (* Generate non-decreasing index sequences in lexicographic order by
     advancing the last position like an odometer with a per-digit floor. *)
  let current = Array.make m 0 in
  let acc = ref [] in
  let rec emit_from slot =
    if slot = m then acc := Array.copy current :: !acc
    else
      for v = (if slot = 0 then 0 else current.(slot - 1)) to n - 1 do
        current.(slot) <- v;
        emit_from (slot + 1)
      done
  in
  emit_from 0;
  List.rev !acc

(* Stars-and-bars bijection: a sorted multiset (x_1 <= ... <= x_m) over n
   elements corresponds to the strictly increasing combination
   (x_1 + 0 < x_2 + 1 < ... < x_m + m - 1) over n + m - 1 elements. *)
let random_multiset rng ~n ~m =
  if n <= 0 || m <= 0 then invalid_arg "Combinatorics.random_multiset";
  let universe = n + m - 1 in
  let combo = Rng.sample_without_replacement rng ~n:universe ~k:m in
  Array.sort compare combo;
  Array.mapi (fun i x -> x - i) combo

let random_selection_with_repetition rng ~n ~m =
  if n <= 0 || m <= 0 then
    invalid_arg "Combinatorics.random_selection_with_repetition";
  let mix = Array.init m (fun _ -> Rng.int rng n) in
  Array.sort compare mix;
  mix

let rank_multiset ~n mix =
  let m = Array.length mix in
  if m = 0 then invalid_arg "Combinatorics.rank_multiset: empty mix";
  Array.iteri
    (fun i x ->
      if x < 0 || x >= n then invalid_arg "Combinatorics.rank_multiset: out of range";
      if i > 0 && x < mix.(i - 1) then
        invalid_arg "Combinatorics.rank_multiset: mix not sorted")
    mix;
  (* Rank = number of multisets lexicographically smaller.  At slot i with
     current floor [lo], choosing any value v in [lo, mix.(i)) leaves a
     multiset tail of size m-i-1 over elements >= v. *)
  let rank = ref 0.0 in
  let lo = ref 0 in
  for i = 0 to m - 1 do
    let remaining = m - i - 1 in
    for v = !lo to mix.(i) - 1 do
      rank := !rank +. multisets_count ~n:(n - v) ~m:remaining
    done;
    lo := mix.(i)
  done;
  !rank

let unrank_multiset ~n ~m r =
  if n <= 0 || m <= 0 then invalid_arg "Combinatorics.unrank_multiset";
  let total = multisets_count ~n ~m in
  if r < 0.0 || r >= total then
    invalid_arg "Combinatorics.unrank_multiset: rank out of range";
  let result = Array.make m 0 in
  let rank = ref r in
  let lo = ref 0 in
  for i = 0 to m - 1 do
    let remaining = m - i - 1 in
    let v = ref !lo in
    let block = ref (multisets_count ~n:(n - !v) ~m:remaining) in
    while !rank >= !block do
      rank := !rank -. !block;
      incr v;
      block := multisets_count ~n:(n - !v) ~m:remaining
    done;
    result.(i) <- !v;
    lo := !v
  done;
  result
