(** Deterministic 64-bit content digests (FNV-1a).

    Unlike [Hashtbl.hash], which is documented to be portable but truncates
    structure and is easy to misuse on floats, this digest is an explicit
    byte-stream fold with a stable, documented algorithm: cache filenames
    and other persistent keys derived from it are reproducible across runs,
    builds and machines. *)

type t = int64
(** Digest state / value. *)

val empty : t
(** The FNV-1a 64-bit offset basis. *)

val add_string : t -> string -> t
(** [add_string t s] folds the bytes of [s] into [t]. *)

val add_int : t -> int -> t
(** [add_int t n] folds the decimal representation of [n] into [t],
    followed by a separator byte, so adjacent fields cannot collide by
    concatenation. *)

val of_string : string -> t
(** [of_string s] is [add_string empty s]. *)

val of_value : 'a -> t
(** [of_value v] digests the [Marshal] byte representation of [v]: a
    convenient structural fingerprint for immutable, closure-free data
    (records of scalars, strings, arrays, ...).  Deterministic across runs
    of the same binary; any change to the value {e or} its type layout
    changes the digest, which is exactly what cache invalidation wants. *)

val to_hex : t -> string
(** 16-character lowercase hex rendering. *)
