(** The co-phase matrix method (Van Biesbrouck et al., ISPASS 2004), built
    as a related-work baseline.

    Idea: a mix's execution decomposes into {e co-phases} — combinations of
    the programs' current phases.  Each co-phase's per-program rates are
    measured {e once} with a short detailed simulation window and cached in
    a matrix; the mix's overall execution is then reconstructed
    analytically by walking the phase schedules, drawing rates from the
    matrix.  This saves a lot of detailed simulation compared to a full
    run, but (the paper's Sec. 7 point) the matrix is built {e per mix}:
    unlike MPPM, the method still needs detailed co-simulation windows for
    every new workload combination, so it cannot address the population
    explosion. *)

type config = {
  hierarchy : Mppm_cache.Hierarchy.config;
  core : Mppm_simcore.Core_model.params;
  window_instructions : int;  (* mppm: unit insns *)
      (** instructions (per program) of the detailed window used to measure
          one co-phase's rates; measurement runs 2x this and keeps the warm
          second half, so cold caches do not bias the rates *)
}

val config :  (* mppm: unit config *)
  ?core:Mppm_simcore.Core_model.params ->
  ?window_instructions:int ->
  Mppm_cache.Hierarchy.config ->
  config
(** Default window: 100K instructions. *)

type program_spec = {
  benchmark : Mppm_trace.Benchmark.t;
  seed : int;  (* mppm: unit 1 *)
  offset : int;  (* mppm: unit bytes *)
}
(** One co-scheduled program: its benchmark, workload seed and starting
    instruction offset. *)

type result = {
  cpi_multi : float array;  (* mppm: unit cycles/insns *)
      (** predicted multi-core CPI over each program's first
          [trace_instructions] instructions *)
  cycles : float array;  (** predicted completion cycle per program *)  (* mppm: unit cycles *)
  co_phases_measured : int;  (** distinct matrix entries filled *)
  detailed_instructions : int;  (* mppm: unit insns *)
      (** total instructions of detailed simulation spent building the
          matrix — the method's cost *)
}

type t
(** A co-phase matrix bound to one mix. *)

val create : config -> programs:program_spec array -> t
(** An empty matrix for the given mix; entries fill on demand during
    {!predict}. *)

val predict : t -> trace_instructions:int -> result  (* mppm: unit _ -> trace_instructions:insns -> result *)
(** [predict t ~trace_instructions] walks the phase schedules, measuring
    co-phases on demand, and reconstructs per-program completion times.
    Matrix entries persist across calls (more traces reuse the matrix). *)

val matrix_size : t -> int
(** Co-phases measured so far. *)
