module Benchmark = Mppm_trace.Benchmark
module Core_model = Mppm_simcore.Core_model
module Multi_core = Mppm_multicore.Multi_core

type config = {
  hierarchy : Mppm_cache.Hierarchy.config;
  core : Core_model.params;
  window_instructions : int;
}

let config ?(core = Core_model.default) ?(window_instructions = 100_000)
    hierarchy =
  if window_instructions <= 0 then
    invalid_arg "Co_phase.config: window_instructions <= 0";
  { hierarchy; core; window_instructions }

type program_spec = {
  benchmark : Mppm_trace.Benchmark.t;
  seed : int;
  offset : int;
}

type result = {
  cpi_multi : float array;
  cycles : float array;
  co_phases_measured : int;
  detailed_instructions : int;
}

(* Per-program schedule view: the phase entries as arrays for O(1) access. *)
type schedule = {
  phases : Benchmark.phase array;
  durations : int array;
}

type t = {
  cfg : config;
  programs : program_spec array;
  schedules : schedule array;
  (* co-phase key (current entry index per program) -> per-program rates in
     instructions per cycle *)
  matrix : (int list, float array) Hashtbl.t;
  mutable detailed_instructions : int;
}

let schedule_of_benchmark b =
  let entries = Array.of_list b.Benchmark.schedule in
  {
    phases = Array.map fst entries;
    durations = Array.map snd entries;
  }

let create cfg ~programs =
  if Array.length programs = 0 then invalid_arg "Co_phase.create: no programs";
  {
    cfg;
    programs;
    schedules =
      Array.map (fun spec -> schedule_of_benchmark spec.benchmark) programs;
    matrix = Hashtbl.create ~random:false 16;
    detailed_instructions = 0;
  }

(* A single-phase stand-in benchmark: the co-phase window simulates each
   program pinned to its current phase. *)
let pinned_benchmark (spec : program_spec) (phase : Benchmark.phase) =
  {
    spec.benchmark with
    Benchmark.name = spec.benchmark.Benchmark.name ^ "@" ^ phase.Benchmark.phase_name;
    schedule = [ (phase, max_int / 2) ];
  }

(* Measure one co-phase with short detailed co-simulations.  Cold caches
   would bias the rates (cold misses dominate short windows), so the rate
   is taken over the warm second half of a doubled window: two
   deterministic runs of w and 2w instructions see identical streams, and
   their cycle difference isolates instructions w..2w. *)
let measure t key =
  let specs =
    Array.mapi
      (fun p entry_idx ->
        let phase = t.schedules.(p).phases.(entry_idx) in
        {
          Multi_core.benchmark = pinned_benchmark t.programs.(p) phase;
          seed = t.programs.(p).seed;
          offset = t.programs.(p).offset;
        })
      (Array.of_list key)
  in
  let run trace_instructions =
    let detail =
      Multi_core.run
        (Multi_core.config ~core:t.cfg.core t.cfg.hierarchy)
        ~programs:specs ~trace_instructions
    in
    t.detailed_instructions <-
      t.detailed_instructions
      + Array.fold_left
          (fun acc p -> acc + p.Multi_core.total_retired)
          0 detail.Multi_core.programs;
    Array.map (fun p -> p.Multi_core.cycles) detail.Multi_core.programs
  in
  let cold = run t.cfg.window_instructions in
  let full = run (2 * t.cfg.window_instructions) in
  Array.mapi
    (fun p c2 ->
      float_of_int t.cfg.window_instructions /. (c2 -. cold.(p)))
    full

let rates t key =
  match Hashtbl.find_opt t.matrix key with
  | Some r -> r
  | None ->
      let r = measure t key in
      Hashtbl.add t.matrix key r;
      r

let predict t ~trace_instructions =
  if trace_instructions <= 0 then
    invalid_arg "Co_phase.predict: trace_instructions <= 0";
  let n = Array.length t.programs in
  (* Walk state: per program, the current schedule entry, instructions left
     in it, total retired, and the recorded completion cycle. *)
  let entry = Array.make n 0 in
  let left =
    Array.init n (fun p -> float_of_int t.schedules.(p).durations.(0))
  in
  let retired = Array.make n 0.0 in
  let completion = Array.make n nan in
  let clock = ref 0.0 in
  let unfinished = ref n in
  while !unfinished > 0 do
    let key = Array.to_list entry in
    let r = rates t key in
    (* Advance until the first phase boundary among the programs. *)
    let dt =
      Array.to_list left
      |> List.mapi (fun p remaining -> remaining /. r.(p))
      |> List.fold_left Float.min infinity
    in
    Array.iteri
      (fun p _ ->
        let advance = r.(p) *. dt in
        let before = retired.(p) in
        retired.(p) <- before +. advance;
        (* Did this program cross its first-trace completion? *)
        if
          Float.is_nan completion.(p)
          && retired.(p) >= float_of_int trace_instructions
        then begin
          completion.(p) <-
            !clock +. ((float_of_int trace_instructions -. before) /. r.(p));
          decr unfinished
        end;
        left.(p) <- left.(p) -. advance;
        if left.(p) <= 1e-6 then begin
          let s = t.schedules.(p) in
          entry.(p) <- (entry.(p) + 1) mod Array.length s.phases;
          left.(p) <- float_of_int s.durations.(entry.(p))
        end)
      entry;
    clock := !clock +. dt
  done;
  {
    cpi_multi =
      Array.map (fun c -> c /. float_of_int trace_instructions) completion;
    cycles = completion;
    co_phases_measured = Hashtbl.length t.matrix;
    detailed_instructions = t.detailed_instructions;
  }

let matrix_size t = Hashtbl.length t.matrix
