module Sdc = Mppm_cache.Sdc

(* lint: allow-file P1 per-prediction result vectors; the flat-scratch rewrite (ROADMAP item 2) preallocates them per model *)

type model =
  | Foa
  | Sdc_competition
  | Prob of { iterations : int }
  | Way_partition of float array

let default = Foa

type prediction = {
  isolated_misses : float array;
  shared_misses : float array;
  extra_misses : float array;
  effective_ways : float array;
}

(* mppm: unit ways *)
let check_inputs sdcs =
  let n = Array.length sdcs in
  if Int.equal n 0 then invalid_arg "Contention.predict: no programs";
  let assoc = Sdc.assoc sdcs.(0) in
  for i = 0 to n - 1 do
    if not (Int.equal (Sdc.assoc sdcs.(i)) assoc) then
      invalid_arg "Contention.predict: associativity mismatch"
  done;
  assoc

(* mppm: unit prediction *)
let finish sdcs shared effective_ways =
  let isolated = Array.map Sdc.misses sdcs in
  {
    isolated_misses = isolated;
    shared_misses = shared;
    extra_misses =
      Array.mapi (fun i s -> Float.max 0.0 (s -. isolated.(i))) shared;
    effective_ways;
  }

(* mppm: unit prediction *)
let no_contention sdcs assoc =
  let n = Array.length sdcs in
  finish sdcs (Array.map Sdc.misses sdcs)
    (Array.make n (float_of_int assoc))

(* FOA: effective ways proportional to access frequency. *)
(* mppm: unit prediction *)
let predict_foa sdcs assoc =
  let accesses = Array.map Sdc.accesses sdcs in
  let total = Array.fold_left ( +. ) 0.0 accesses in
  if total <= 0.0 then no_contention sdcs assoc
  else
    let ways =
      Array.map (fun a -> float_of_int assoc *. a /. total) accesses
    in
    let shared =
      Array.mapi (fun i sdc -> Sdc.misses_with_ways sdc ~ways:ways.(i)) sdcs
    in
    finish sdcs shared ways

(* Stack-distance competition: greedily hand out the A ways, one at a time,
   to the program whose next (deeper) stack-distance counter is largest —
   i.e. the program that would convert the most hits by owning one more
   way. *)
(* mppm: unit prediction *)
let predict_sdc_competition sdcs assoc =
  let n = Array.length sdcs in
  let owned = Array.make n 0 in
  for _ = 1 to assoc do
    let best = ref (-1) in
    let best_gain = ref neg_infinity in
    for p = 0 to n - 1 do
      if owned.(p) < assoc then begin
        let gain = Sdc.counter sdcs.(p) (owned.(p) + 1) in
        if gain > !best_gain then begin
          best_gain := gain;
          best := p
        end
      end
    done;
    if !best >= 0 then owned.(!best) <- owned.(!best) + 1
  done;
  let ways = Array.map float_of_int owned in
  let shared =
    Array.mapi (fun i sdc -> Sdc.misses_with_ways sdc ~ways:ways.(i)) sdcs
  in
  finish sdcs shared ways

(* Prob-style dilation: between two accesses by program p at stack distance
   d, co-runners allocate (d / accesses_p) * sum_q misses_q new lines on
   average, dilating the distance to d * (1 + others_misses / accesses_p).
   An access survives iff its dilated distance fits in A, i.e. its original
   distance fits in A / (1 + r).  Misses feed back into the dilation, so we
   iterate to a fixed point. *)
(* mppm: unit prediction *)
let predict_prob ~iterations sdcs assoc =
  let n = Array.length sdcs in
  let accesses = Array.map Sdc.accesses sdcs in
  let shared = Array.map Sdc.misses sdcs in
  let ways = Array.make n (float_of_int assoc) in
  for _ = 1 to max 1 iterations do
    let total_misses = Array.fold_left ( +. ) 0.0 shared in
    for p = 0 to n - 1 do
      if accesses.(p) > 0.0 then begin
        let others = total_misses -. shared.(p) in
        let dilation = 1.0 +. (others /. accesses.(p)) in
        ways.(p) <- float_of_int assoc /. dilation;
        shared.(p) <- Sdc.misses_with_ways sdcs.(p) ~ways:ways.(p)
      end
    done
  done;
  finish sdcs shared ways

(* Way partitioning decouples the programs entirely: each one owns its
   quota regardless of how the others behave, so its shared misses are its
   isolated SDC evaluated at the quota. *)
(* mppm: unit prediction *)
let predict_way_partition quotas sdcs assoc =
  if Array.length quotas < Array.length sdcs then
    invalid_arg "Contention.predict: partition smaller than the mix";
  Array.iter
    (fun q -> if q <= 0.0 then invalid_arg "Contention.predict: non-positive quota")
    quotas;
  let ways =
    Array.mapi
      (fun i _ -> Float.min quotas.(i) (float_of_int assoc))
      sdcs
  in
  let shared =
    Array.mapi (fun i sdc -> Sdc.misses_with_ways sdc ~ways:ways.(i)) sdcs
  in
  finish sdcs shared ways

(* mppm: hot — per-quantum FOA / contention prediction *)
let predict model sdcs =
  let assoc = check_inputs sdcs in
  match model with
  | Way_partition quotas -> predict_way_partition quotas sdcs assoc
  | (Foa | Sdc_competition | Prob _) when Int.equal (Array.length sdcs) 1 ->
      no_contention sdcs assoc
  | Foa -> predict_foa sdcs assoc
  | Sdc_competition -> predict_sdc_competition sdcs assoc
  | Prob { iterations } -> predict_prob ~iterations sdcs assoc

let model_name = function
  | Foa -> "foa"
  | Sdc_competition -> "sdc"
  | Prob { iterations } -> Printf.sprintf "prob:%d" iterations
  | Way_partition quotas ->
      "part:"
      ^ String.concat ","
          (List.map (Printf.sprintf "%g") (Array.to_list quotas))

let of_string s =
  match String.lowercase_ascii s with
  | "foa" -> Foa
  | "sdc" -> Sdc_competition
  | "prob" -> Prob { iterations = 5 }
  | s when String.length s > 5 && String.sub s 0 5 = "prob:" -> (
      match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some iterations when iterations > 0 -> Prob { iterations }
      | Some _ | None -> invalid_arg "Contention.of_string: bad prob iterations")
  | s when String.length s > 5 && String.sub s 0 5 = "part:" -> (
      try
        Way_partition
          (String.sub s 5 (String.length s - 5)
          |> String.split_on_char ','
          |> List.map float_of_string
          |> Array.of_list)
      with Failure _ -> invalid_arg "Contention.of_string: bad partition")
  | _ ->
      invalid_arg "Contention.of_string: expected foa|sdc|prob[:n]|part:<ways>"

let pp ppf model = Format.pp_print_string ppf (model_name model)
