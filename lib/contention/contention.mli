(** Shared-cache contention models (Chandra et al., HPCA 2005).

    Given each co-scheduled program's isolated stack-distance counters over
    an execution epoch, a contention model predicts how many {e additional}
    misses each program suffers because the cache is shared.  MPPM is
    parametric in the model (paper Sec. 2.3); the paper uses FOA, "a fairly
    simple model ... accurate enough for our needs". *)

type model =
  | Foa
      (** Frequency-of-access: each program's effective share of the cache
          is proportional to its access frequency; its shared misses are
          its isolated SDC evaluated at that (fractional) number of ways. *)
  | Sdc_competition
      (** Chandra et al.'s stack-distance-competition model: the A ways of
          a set are handed out one at a time to the program whose next
          stack-depth counter is largest (a greedy merge of the SDC
          profiles). *)
  | Prob of { iterations : int }
      (** An inductive-probability-style dilation model: intervening
          allocations by co-runners dilate each program's stack distances
          by the ratio of others' miss traffic to the program's own access
          rate; solved by fixed-point iteration. *)
  | Way_partition of float array
      (** A way-partitioned shared cache (Sec. 2.3: MPPM supports any
          partitioning strategy given a matching contention model): program
          [p]'s misses are its isolated SDC evaluated at its quota of ways,
          independent of co-runner behaviour.  The array gives per-program
          quotas, one per co-scheduled program. *)

val default : model
(** {!Foa}, as in the paper. *)

type prediction = {
  isolated_misses : float array;  (** each program's own-SDC misses *)  (* mppm: unit accesses *)
  shared_misses : float array;  (** predicted misses under sharing *)  (* mppm: unit accesses *)
  extra_misses : float array;  (* mppm: unit accesses *)
      (** [max 0 (shared - isolated)]: the conflict misses MPPM charges *)
  effective_ways : float array;  (* mppm: unit ways *)
      (** the per-program cache share the model settled on (ways); for
          {!Prob} this is the undilated-equivalent ways *)
}

val predict : model -> Mppm_cache.Sdc.t array -> prediction  (* mppm: unit _ -> _ -> prediction *)
(** [predict model sdcs] runs the model over the co-scheduled programs'
    epoch SDCs.  All SDCs must share the same associativity.  A single
    program, or an epoch with no accesses, yields zero extra misses. *)

val model_name : model -> string
(** Short display name ("FOA", "SDC-competition", ...). *)

val of_string : string -> model
(** "foa" | "sdc" | "prob[:iterations]" | "part:<w1,w2,...>". *)

(* lint: allow S4 debugging printer kept as API surface *)
val pp : Format.formatter -> model -> unit
(** Prints {!model_name}. *)
