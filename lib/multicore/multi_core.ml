module Hierarchy = Mppm_cache.Hierarchy
module Cache = Mppm_cache.Cache
module Core_model = Mppm_simcore.Core_model
module Core_engine = Mppm_simcore.Core_engine
module Generator = Mppm_trace.Generator

type config = {
  hierarchy : Hierarchy.config;
  core : Core_model.params;
  llc_partition : int array option;
  bandwidth : float option;
}

let config ?(core = Core_model.default) ?llc_partition ?bandwidth hierarchy =
  { hierarchy; core; llc_partition; bandwidth }

type program_spec = {
  benchmark : Mppm_trace.Benchmark.t;
  seed : int;
  offset : int;
}

type program_result = {
  name : string;
  instructions : int;
  cycles : float;
  multicore_cpi : float;
  llc_accesses : int;
  llc_misses : int;
  total_retired : int;
}

type result = {
  programs : program_result array;
  wall_cycles : float;
  llc_total_accesses : int;
  llc_total_misses : int;
}

type core_state = {
  engine : Core_engine.t;
  spec : program_spec;
  mutable first_pass_done : bool;
  mutable completion : Core_engine.snapshot option;
}

(* Cap for ops of cores that already finished their first pass: keeps the
   step loop cheap without affecting measurement (their per-op block size
   is bounded by the generator's memory gaps anyway). *)
let post_pass_cap = 1 lsl 20

let run ?compute_scales cfg ~programs ~trace_instructions =
  if Array.length programs = 0 then invalid_arg "Multi_core.run: no programs";
  (match compute_scales with
  | Some scales when Array.length scales < Array.length programs ->
      invalid_arg "Multi_core.run: compute_scales smaller than the mix"
  | Some _ | None -> ());
  if trace_instructions <= 0 then
    invalid_arg "Multi_core.run: trace_instructions <= 0";
  (match cfg.llc_partition with
  | Some quotas when Array.length quotas < Array.length programs ->
      invalid_arg "Multi_core.run: partition smaller than the mix"
  | Some _ | None -> ());
  let shared_llc =
    Cache.create ?partition:cfg.llc_partition
      cfg.hierarchy.Hierarchy.llc.geometry
  in
  let memory_channel =
    Option.map
      (fun transfer_cycles ->
        Mppm_simcore.Memory_channel.create ~transfer_cycles)
      cfg.bandwidth
  in
  let cores =
    Array.mapi
      (fun slot spec ->
        let generator =
          Generator.create ~offset:spec.offset ~seed:spec.seed spec.benchmark
        in
        let hierarchy =
          Hierarchy.create ~llc:shared_llc ~llc_owner:slot cfg.hierarchy
        in
        let compute_scale =
          match compute_scales with Some s -> Some s.(slot) | None -> None
        in
        {
          engine =
            Core_engine.create ?memory_channel ?compute_scale ~params:cfg.core
              ~hierarchy ~generator ();
          spec;
          first_pass_done = false;
          completion = None;
        })
      programs
  in
  let unfinished = ref (Array.length cores) in
  while !unfinished > 0 do
    (* The core with the smallest cycle clock executes its next op: this
       orders LLC accesses by (approximate) time. *)
    let next = ref (-1) in
    let best = ref infinity in
    Array.iteri
      (fun i core ->
        let c = Core_engine.cycles core.engine in
        if c < !best then begin
          best := c;
          next := i
        end)
      cores;
    let core = cores.(!next) in
    let cap =
      if core.first_pass_done then post_pass_cap
      else trace_instructions - Core_engine.retired core.engine
    in
    let _retired = Core_engine.step core.engine ~cap in
    if
      (not core.first_pass_done)
      && Core_engine.retired core.engine >= trace_instructions
    then begin
      core.first_pass_done <- true;
      core.completion <- Some (Core_engine.snapshot core.engine);
      decr unfinished
    end
  done;
  let programs =
    Array.map
      (fun core ->
        let completion =
          match core.completion with Some s -> s | None -> assert false
        in
        {
          name = core.spec.benchmark.Mppm_trace.Benchmark.name;
          instructions = trace_instructions;
          cycles = completion.Core_engine.s_cycles;
          multicore_cpi =
            completion.Core_engine.s_cycles /. float_of_int trace_instructions;
          llc_accesses = completion.Core_engine.s_llc_accesses;
          llc_misses = completion.Core_engine.s_llc_misses;
          total_retired = Core_engine.retired core.engine;
        })
      cores
  in
  let wall_cycles =
    Array.fold_left (fun acc p -> Float.max acc p.cycles) 0.0 programs
  in
  (* End-of-run aggregates only: a coarse boundary, never the hot path. *)
  let module Registry = Mppm_obs.Registry in
  Registry.incr "multicore.runs";
  Registry.add "multicore.wall_cycles" wall_cycles;
  Registry.add "multicore.shared_llc.accesses"
    (float_of_int (Cache.accesses shared_llc));
  Registry.add "multicore.shared_llc.misses"
    (float_of_int (Cache.misses shared_llc));
  Array.iter
    (fun core ->
      Registry.add_all ~prefix:"multicore"
        (Hierarchy.counters (Core_engine.hierarchy core.engine)))
    cores;
  {
    programs;
    wall_cycles;
    llc_total_accesses = Cache.accesses shared_llc;
    llc_total_misses = Cache.misses shared_llc;
  }

let default_offsets ?(seed = 0x0ff5e75) n =
  let rng = Mppm_util.Rng.create ~seed in
  Array.init n (fun i ->
      (* 64GB apart, plus up to 16MB of page-granular jitter. *)
      ((i + 1) * (1 lsl 36)) + (Mppm_util.Rng.int rng 4096 * 4096))
