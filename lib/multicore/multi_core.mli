(** The detailed multi-core reference simulator (the CMP$im stand-in).

    N cores, each with private L1I/L1D/L2, share one LLC.  Cores execute
    their programs concurrently; interleaving at the shared LLC follows the
    cores' cycle clocks (the core with the smallest clock executes next),
    so cache contention emerges from actual timing, exactly the behaviour
    MPPM tries to predict analytically.

    Per-program multi-core CPI is measured over the program's first full
    trace; programs that finish early keep running (their generators cycle)
    so the slower programs stay under contention — the Tuck & Tullsen /
    FAME re-iteration methodology the paper also follows. *)

type config = {
  hierarchy : Mppm_cache.Hierarchy.config;
  core : Mppm_simcore.Core_model.params;
  llc_partition : int array option;  (* mppm: unit ways *)
      (** way quotas per core for a way-partitioned shared LLC; length must
          cover the mix size.  [None] = fully shared LRU (the paper's
          machine). *)
  bandwidth : float option;  (* mppm: unit cycles *)
      (** memory-channel occupancy (cycles per line transfer) of one
          channel shared by all cores; [None] = unlimited bandwidth (the
          paper's machine) *)
}

val config :  (* mppm: unit config *)
  ?core:Mppm_simcore.Core_model.params ->
  ?llc_partition:int array ->
  ?bandwidth:float ->
  Mppm_cache.Hierarchy.config ->
  config
(** Convenience constructor; defaults are the paper's machine (default
    core, fully shared LRU LLC, unlimited bandwidth). *)

type program_spec = {
  benchmark : Mppm_trace.Benchmark.t;
  seed : int;  (** generator seed; use the profiling seed to match traces *)  (* mppm: unit 1 *)
  offset : int;  (** address-space displacement for this program instance *)  (* mppm: unit bytes *)
}

type program_result = {
  name : string;
  instructions : int;  (** first-pass length *)  (* mppm: unit insns *)
  cycles : float;  (** cycle at which the first pass completed *)  (* mppm: unit cycles *)
  multicore_cpi : float;  (** [cycles / instructions] *)  (* mppm: unit cycles/insns *)
  llc_accesses : int;  (** during the first pass *)  (* mppm: unit accesses *)
  llc_misses : int;  (** during the first pass *)  (* mppm: unit accesses *)
  total_retired : int;  (** including re-iterations, at simulation end *)  (* mppm: unit insns *)
}

type result = {
  programs : program_result array;
  wall_cycles : float;  (** cycle at which the last first-pass completed *)  (* mppm: unit cycles *)
  llc_total_accesses : int;  (* mppm: unit accesses *)
  llc_total_misses : int;  (* mppm: unit accesses *)
}

val run :  (* mppm: unit result *)
  ?compute_scales:float array ->
  config ->
  programs:program_spec array ->
  trace_instructions:int ->
  result
(** [run config ~programs ~trace_instructions] simulates the mix until
    every program has completed [trace_instructions] instructions.
    [compute_scales], when given, makes the machine heterogeneous: core
    [i]'s non-memory cycle costs are multiplied by [compute_scales.(i)]
    (1.0 = the baseline "big" core; see {!Mppm_simcore.Core_engine}). *)

val default_offsets : ?seed:int -> int -> int array  (* mppm: unit seed:1 -> programs -> bytes *)
(** [default_offsets ~seed n] is [n] address-space offsets that (a) are
    far enough apart that program instances never share lines, and (b)
    carry a per-instance page-granular randomization so co-running copies
    of the same benchmark do not collide set-for-set pathologically. *)
