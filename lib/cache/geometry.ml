type t = {
  size_bytes : int;
  line_bytes : int;
  associativity : int;
  num_sets : int;
  set_shift : int;
  set_mask : int;
}

let is_power_of_two x = x > 0 && x land (x - 1) = 0

let log2_exact x =
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 x

let make ~size_bytes ~line_bytes ~associativity =
  if not (is_power_of_two size_bytes) then
    invalid_arg "Geometry.make: size_bytes must be a power of two";
  if not (is_power_of_two line_bytes) then
    invalid_arg "Geometry.make: line_bytes must be a power of two";
  if associativity <= 0 then
    invalid_arg "Geometry.make: associativity must be positive";
  let total_lines = size_bytes / line_bytes in
  if total_lines = 0 || total_lines mod associativity <> 0 then
    invalid_arg "Geometry.make: associativity must divide the line count";
  let num_sets = total_lines / associativity in
  if not (is_power_of_two num_sets) then
    invalid_arg "Geometry.make: derived set count must be a power of two";
  (* lint: allow U1 the set count is carved out of untyped byte arithmetic (capacity / line / ways); sets is a base dimension born at this constructor *)
  {
    size_bytes;
    line_bytes;
    associativity;
    num_sets;
    set_shift = log2_exact line_bytes;
    set_mask = num_sets - 1;
  }

let kib n = n * 1024
let mib n = n * 1024 * 1024
let set_index t addr = (addr lsr t.set_shift) land t.set_mask
let tag t addr = addr lsr t.set_shift
let line_address t addr = addr land lnot (t.line_bytes - 1)
let lines t = t.num_sets * t.associativity

let describe_size bytes =
  if bytes >= mib 1 && bytes mod mib 1 = 0 then
    Printf.sprintf "%dMB" (bytes / mib 1)
  else if bytes >= kib 1 && bytes mod kib 1 = 0 then
    Printf.sprintf "%dKB" (bytes / kib 1)
  else Printf.sprintf "%dB" bytes

let pp ppf t =
  Format.fprintf ppf "%s %d-way %dB-line (%d sets)"
    (describe_size t.size_bytes) t.associativity t.line_bytes t.num_sets
