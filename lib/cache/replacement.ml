type t = Lru | Fifo | Random of int

let pp ppf = function
  | Lru -> Format.pp_print_string ppf "LRU"
  | Fifo -> Format.pp_print_string ppf "FIFO"
  | Random seed -> Format.fprintf ppf "Random(seed=%d)" seed

let to_string = function
  | Lru -> "lru"
  | Fifo -> "fifo"
  | Random seed -> Printf.sprintf "random:%d" seed

let of_string s =
  match String.lowercase_ascii s with
  | "lru" -> Lru
  | "fifo" -> Fifo
  | s when String.length s > 7 && String.sub s 0 7 = "random:" -> (
      match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
      | Some seed -> Random seed
      | None -> invalid_arg "Replacement.of_string: bad random seed")
  | _ -> invalid_arg "Replacement.of_string: expected lru|fifo|random:<seed>"
