(** Replacement policies for set-associative caches.

    The paper's caches are all LRU; MPPM itself is independent of the
    policy as long as the contention model matches it (Sec. 2.3), so we also
    provide FIFO and Random to support that discussion and the ablation
    benches. *)

type t =
  | Lru  (** least-recently-used: the policy used throughout the paper *)
  | Fifo  (** first-in-first-out: insertion order, untouched by hits *)
  | Random of int  (** random victim, with the PRNG seed to use *)

(* lint: allow S4 debugging printer kept as API surface *)
val pp : Format.formatter -> t -> unit
(** Prints {!to_string}. *)

val to_string : t -> string
(** "lru", "fifo" or "random:<seed>". *)

val of_string : string -> t
(** Inverse of {!to_string} ("lru", "fifo", "random:<seed>").  Raises
    [Invalid_argument] on unknown names. *)
