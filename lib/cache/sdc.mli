(** Stack Distance Counters (Mattson et al. 1970), the per-program cache
    profile MPPM feeds to its contention model.

    For an A-way set-associative LRU cache an SDC holds A+1 counters
    C_1 ... C_A, C_{>A}: an access that hits at depth i of its set's LRU
    stack increments C_i; a miss increments C_{>A}.  Counters are floats so
    profiles can be scaled and merged without overflow concerns. *)

type t
(** An SDC histogram; immutable size (associativity), mutable counters. *)

val create : assoc:int -> t  (* mppm: unit assoc:ways -> sdc *)
(** [create ~assoc] is an all-zero SDC for an [assoc]-way cache. *)

val assoc : t -> int  (* mppm: unit ways *)
(** The associativity [A] this SDC was created for. *)

val record : t -> depth:int -> unit  (* mppm: unit _ -> depth:ways -> _ *)
(** [record t ~depth] increments the counter for an access that hit at
    1-based LRU depth [depth]; [depth > assoc t] (e.g. [max_int]) records a
    miss. *)

val counter : t -> int -> float  (* mppm: unit _ -> ways -> accesses *)
(** [counter t i] is C_i for [1 <= i <= assoc], and C_{>A} for
    [i = assoc + 1]. *)

val accesses : t -> float  (* mppm: unit accesses *)
(** Total accesses: sum of all counters. *)

val hits : t -> float  (* mppm: unit accesses *)
(** Accesses with depth <= associativity. *)

val misses : t -> float  (* mppm: unit accesses *)
(** The C_{>A} counter. *)

val miss_rate : t -> float  (* mppm: unit 1 *)
(** [misses / accesses]; 0 if there are no accesses. *)

val copy : t -> t  (* mppm: unit _ -> sdc *)
(** An independent SDC with the same counter values. *)

val add : t -> t -> t  (* mppm: unit _ -> _ -> sdc *)
(** [add a b] is the element-wise sum; both must have equal associativity.
    Summing per-interval SDCs is how MPPM builds the SDC for an arbitrary
    instruction window (paper Sec. 2.2). *)

val add_into : dst:t -> t -> unit
(** In-place accumulate. *)

val scale : t -> float -> t  (* mppm: unit _ -> 1 -> sdc *)
(** [scale t k] multiplies every counter by [k]; used to take a fractional
    part of an interval's SDC when an instruction window cuts an interval. *)

val reduce_associativity : t -> assoc:int -> t  (* mppm: unit _ -> assoc:ways -> sdc *)
(** [reduce_associativity t ~assoc] derives the SDC the same access stream
    would produce on a cache of lower associativity with the same set count:
    counters beyond the new depth fold into the miss counter (inclusion
    property of LRU).  This is the paper's Sec. 2 parenthetical — profiling
    once at 16 ways serves 8-way studies for free.  Requires
    [assoc <= assoc t]. *)

val misses_with_ways : t -> ways:float -> float  (* mppm: unit _ -> ways:ways -> accesses *)
(** [misses_with_ways t ~ways] is the miss count if the program only owned
    [ways] ways of each set, interpolated linearly between integer depths.
    [ways >= assoc t] gives [misses t]; [ways = 0.] means every access
    misses.  This is the FOA contention model's core query. *)

val prefix_counts : t list -> float array  (* mppm: unit _ -> cumulative accesses *)
(** [prefix_counts sdcs] is the running access mass over an interval
    sequence's SDCs: element [0] is [0.] and element [i] the total
    accesses of the first [i] intervals.  A window's mass is then one
    subtraction of two cumulative readings ({!window_accesses}) —
    groundwork for the O(1) window queries of the flat-profile rewrite
    (ROADMAP item 2). *)

val window_accesses :  (* mppm: unit cumulative accesses -> first:intervals -> last:intervals -> accesses *)
  float array -> first:int -> last:int -> float
(** [window_accesses prefix ~first ~last] is the access mass of intervals
    [first], ..., [last - 1]: [prefix.(last) -. prefix.(first)].
    Subtracting the two cumulative readings discharges to a per-window
    quantity.  Raises [Invalid_argument] unless
    [0 <= first <= last < length prefix]. *)

val to_list : t -> float list
(** Counters in order C_1, ..., C_A, C_{>A}. *)

val of_list : assoc:int -> float list -> t
(** Inverse of {!to_list}; the list must have length [assoc + 1]. *)

val pp : Format.formatter -> t -> unit
(** Compact one-line rendering of the counters. *)
