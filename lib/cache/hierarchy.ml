type level = { geometry : Geometry.t; latency : int }

type config = {
  l1i : level;
  l1d : level;
  l2 : level;
  llc : level;
  memory_latency : int;
}

type hit_level = L1 | L2 | Llc | Memory
type access_kind = Fetch | Load | Store

type result = {
  latency : int;
  hit_level : hit_level;
  llc_outcome : Cache.outcome option;
}

type t = {
  config : config;
  l1i_cache : Cache.t;
  l1d_cache : Cache.t;
  l2_cache : Cache.t;
  llc_cache : Cache.t;
  llc_owner : int;
  perfect_llc : bool;
  mutable llc_accesses : int;
  mutable llc_misses : int;
}

let create ?llc ?(llc_owner = 0) ?(perfect_llc = false) config =
  let llc_cache =
    match llc with
    | Some cache ->
        if Cache.geometry cache <> config.llc.geometry then
          invalid_arg "Hierarchy.create: shared LLC geometry mismatch";
        cache
    | None -> Cache.create config.llc.geometry
  in
  {
    config;
    l1i_cache = Cache.create config.l1i.geometry;
    l1d_cache = Cache.create config.l1d.geometry;
    l2_cache = Cache.create config.l2.geometry;
    llc_cache;
    llc_owner;
    perfect_llc;
    llc_accesses = 0;
    llc_misses = 0;
  }

let config t = t.config
let llc t = t.llc_cache

(* mppm: unit result *)
let access t ~kind ~addr =
  (* Two small matches instead of one returning a pair: the L1 split must
     not allocate on the per-access path. *)
  let l1 =
    match kind with Fetch -> t.l1i_cache | Load | Store -> t.l1d_cache
  in
  let l1_latency =
    match kind with
    | Fetch -> t.config.l1i.latency
    | Load | Store -> t.config.l1d.latency
  in
  match Cache.access l1 addr with
  | Cache.Hit _ ->
      (* lint: allow P1 per-access result record; packed-int results belong to the ROADMAP-2 rewrite *)
      { latency = l1_latency; hit_level = L1; llc_outcome = None }
  | Cache.Miss -> (
      match Cache.access t.l2_cache addr with
      | Cache.Hit _ ->
          (* lint: allow P1 per-access result record; see above *)
          { latency = t.config.l2.latency; hit_level = L2; llc_outcome = None }
      | Cache.Miss ->
          t.llc_accesses <- t.llc_accesses + 1;
          (* A perfect LLC hits on every access and keeps no state. *)
          let outcome =
            if t.perfect_llc then Cache.Hit 1
            else Cache.access_as t.llc_cache ~owner:t.llc_owner addr
          in
          (match outcome with
          | Cache.Hit _ ->
              (* lint: allow P1 per-access result record; see above *)
              {
                latency = t.config.llc.latency;
                hit_level = Llc;
                llc_outcome = Some outcome;
              }
          | Cache.Miss ->
              t.llc_misses <- t.llc_misses + 1;
              (* lint: allow P1 per-access result record; see above *)
              {
                latency = t.config.llc.latency + t.config.memory_latency;
                hit_level = Memory;
                llc_outcome = Some outcome;
              }))

let llc_accesses t = t.llc_accesses
let llc_misses t = t.llc_misses

let counters t =
  let level name cache =
    List.map (fun (k, v) -> (name ^ "." ^ k, v)) (Cache.counters cache)
  in
  level "l1i" t.l1i_cache
  @ level "l1d" t.l1d_cache
  @ level "l2" t.l2_cache
  (* The LLC may be shared between cores; report this core's own view. *)
  @ [
      ("llc.accesses", float_of_int t.llc_accesses);
      ("llc.misses", float_of_int t.llc_misses);
      ("llc.hits", float_of_int (t.llc_accesses - t.llc_misses));
    ]

let pp_level ppf (name, level) =
  Format.fprintf ppf "%-10s %a, %d cycle%s" name Geometry.pp level.geometry
    level.latency
    (if level.latency = 1 then "" else "s")

let pp_config ppf config =
  Format.fprintf ppf "@[<v>%a@,%a@,%a@,%a@,%-10s %d cycles@]" pp_level
    ("L1 I", config.l1i) pp_level
    ("L1 D", config.l1d)
    pp_level ("L2", config.l2) pp_level ("LLC", config.llc) "memory"
    config.memory_latency
