let line_bytes = 64

let level ~size_bytes ~associativity ~latency =
  {
    Hierarchy.geometry = Geometry.make ~size_bytes ~line_bytes ~associativity;
    latency;
  }

let l1i = level ~size_bytes:(Geometry.kib 32) ~associativity:4 ~latency:1
let l1d = level ~size_bytes:(Geometry.kib 32) ~associativity:8 ~latency:1
let l2 = level ~size_bytes:(Geometry.kib 256) ~associativity:8 ~latency:10
let memory_latency = 200

let llc_config = function
  | 1 -> level ~size_bytes:(Geometry.kib 512) ~associativity:8 ~latency:16
  | 2 -> level ~size_bytes:(Geometry.kib 512) ~associativity:16 ~latency:20
  | 3 -> level ~size_bytes:(Geometry.mib 1) ~associativity:8 ~latency:18
  | 4 -> level ~size_bytes:(Geometry.mib 1) ~associativity:16 ~latency:22
  | 5 -> level ~size_bytes:(Geometry.mib 2) ~associativity:8 ~latency:20
  | 6 -> level ~size_bytes:(Geometry.mib 2) ~associativity:16 ~latency:24
  | n -> invalid_arg (Printf.sprintf "Configs.llc_config: no config #%d" n)

let llc_config_count = 6

let baseline ?(llc = 1) () =
  { Hierarchy.l1i; l1d; l2; llc = llc_config llc; memory_latency }

let llc_config_name n =
  if n < 1 || n > llc_config_count then
    invalid_arg "Configs.llc_config_name"
  else Printf.sprintf "config #%d" n
