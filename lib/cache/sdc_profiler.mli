(** Per-interval stack-distance profiling of an access stream.

    Drives a private LRU image of the target cache and histograms every
    access's LRU depth into the current interval's {!Sdc.t}.  The
    single-core profiling run cuts an interval every 20M instructions
    (scaled), producing the per-interval SDCs MPPM consumes. *)

type t
(** A profiler: a private cache image plus the interval in progress. *)

val create : Geometry.t -> t  (* mppm: unit _ -> profiler *)
(** [create geometry] profiles a cache of the given geometry (always LRU:
    stack distances are defined against the LRU stack). *)

val access : t -> int -> Cache.outcome  (* mppm: unit _ -> _ -> outcome *)
(** [access t addr] simulates the access, records its depth in the current
    interval, and reports the outcome. *)

val record_outcome : t -> Cache.outcome -> unit  (* mppm: unit _ -> _ -> _ *)
(** [record_outcome t outcome] histograms an outcome observed on an
    *external* cache of the same geometry, without touching the internal
    image.  Used when the profiled cache is simulated elsewhere. *)

val cut_interval : t -> Sdc.t  (* mppm: unit sdc *)
(** [cut_interval t] returns the SDC accumulated since the previous cut
    (or creation) and starts a fresh interval. *)

val current : t -> Sdc.t  (* mppm: unit sdc *)
(** The (live) SDC of the interval in progress.  The returned value aliases
    internal state; copy it if you need a snapshot. *)

val lifetime_total : t -> Sdc.t  (* mppm: unit sdc *)
(** Sum over all completed intervals plus the current one. *)
