(** Cache geometry: capacity, line size and associativity, plus the address
    arithmetic (set index / tag extraction) shared by the cache model and
    the stack-distance profiler. *)

type t = private {
  size_bytes : int;  (** total capacity in bytes; power of two *)
  line_bytes : int;  (** line size in bytes; power of two *)
  associativity : int;  (** ways per set; must divide the line count *)  (* mppm: unit ways *)
  num_sets : int;  (** derived: [size_bytes / line_bytes / associativity] *)  (* mppm: unit sets *)
  set_shift : int;  (** derived: log2 [line_bytes] *)
  set_mask : int;  (** derived: [num_sets - 1] *)
}

val make : size_bytes:int -> line_bytes:int -> associativity:int -> t
(** [make ~size_bytes ~line_bytes ~associativity] validates the parameters
    (powers of two, associativity divides the line count) and derives the
    indexing fields.  Raises [Invalid_argument] on malformed geometry. *)

val kib : int -> int  (* mppm: unit _ -> bytes *)
(** [kib n] is [n] kibibytes in bytes. *)

val mib : int -> int  (* mppm: unit _ -> bytes *)
(** [mib n] is [n] mebibytes in bytes. *)

val set_index : t -> int -> int  (* mppm: unit sets *)
(** [set_index t addr] is the set the byte address [addr] maps to. *)

val tag : t -> int -> int  (* mppm: unit _ -- line tag from untyped address bits *)
(** [tag t addr] is the tag stored for [addr] (line address; distinct lines
    mapping to the same set have distinct tags). *)

val line_address : t -> int -> int
(** [line_address t addr] is [addr] with the intra-line offset cleared,
    identifying the cache line. *)

val lines : t -> int  (* mppm: unit sets*ways *)
(** Total number of lines ([num_sets * associativity]). *)

val pp : Format.formatter -> t -> unit
(** Prints e.g. "512KB 8-way 64B-line (1024 sets)". *)

val describe_size : int -> string
(** [describe_size bytes] renders a byte count as "32KB", "1MB", ... *)
