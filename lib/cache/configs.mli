(* lint: allow-file S4 Table 1 constants are documented paper surface even where baseline () is the only consumer *)
(** The paper's cache configurations (Tables 1 and 2).

    Table 1 fixes the private levels: 32KB 4-way L1I, 32KB 8-way L1D (both
    1 cycle), 256KB 8-way private L2 (10 cycles), 200-cycle memory.  Table 2
    lists six shared-LLC design points that the design-space experiments
    (Figs. 7-9) rank against each other. *)

val line_bytes : int
(** Cache line size used throughout (64 bytes). *)

val l1i : Hierarchy.level
(** 32KB 4-way instruction L1, 1 cycle (Table 1). *)

val l1d : Hierarchy.level
(** 32KB 8-way data L1, 1 cycle (Table 1). *)

val l2 : Hierarchy.level
(** 256KB 8-way private L2, 10 cycles (Table 1). *)

val memory_latency : int  (* mppm: unit cycles *)
(** Main-memory access latency in cycles (200, Table 1). *)

val llc_config : int -> Hierarchy.level
(** [llc_config n] is LLC configuration #[n] of Table 2 for [n] in 1..6:
    {ul
    {- #1: 512KB 8-way, 16 cycles}
    {- #2: 512KB 16-way, 20 cycles}
    {- #3: 1MB 8-way, 18 cycles}
    {- #4: 1MB 16-way, 22 cycles}
    {- #5: 2MB 8-way, 20 cycles}
    {- #6: 2MB 16-way, 24 cycles}}
    Raises [Invalid_argument] otherwise. *)

val llc_config_count : int
(** Number of Table 2 configurations (6). *)

val baseline : ?llc:int -> unit -> Hierarchy.config
(** [baseline ~llc ()] is the Table 1 hierarchy with LLC configuration
    #[llc] (default #1, the smallest LLC, which the paper uses "to stress
    our model"). *)

val llc_config_name : int -> string
(** "config #1" ... "config #6". *)
