(** The private portion of a core's cache hierarchy plus its (possibly
    shared) last-level cache, with the latency model of the paper's Table 1:
    L1 I/D 1 cycle, private L2 10 cycles, shared L3 per Table 2, memory 200
    cycles.

    One {!t} exists per core.  In single-core runs the LLC is owned; in the
    detailed multi-core simulator one LLC {!Cache.t} is created and every
    core's hierarchy is built around it with [~llc]. *)

type level = {
  geometry : Geometry.t;
  latency : int;  (* mppm: unit cycles *)
}
(** One cache level: geometry plus access latency in cycles. *)

type config = {
  l1i : level;
  l1d : level;
  l2 : level;
  llc : level;
  memory_latency : int;  (* mppm: unit cycles *)
}
(** Full hierarchy parameters. *)

type hit_level = L1 | L2 | Llc | Memory
(** Where an access was satisfied. *)

type access_kind = Fetch | Load | Store
(** Instruction fetch vs. data read vs. data write. *)

type result = {
  latency : int;  (** cycles to satisfy the access *)  (* mppm: unit cycles *)
  hit_level : hit_level;
  llc_outcome : Cache.outcome option;
      (** outcome at the LLC if the access reached it (i.e. missed L2);
          [None] otherwise.  Lets profilers histogram LLC stack depths. *)
}

type t
(** One core's view of the hierarchy. *)

val create :
  ?llc:Cache.t -> ?llc_owner:int -> ?perfect_llc:bool -> config -> t
(** [create ?llc ?llc_owner ?perfect_llc config] builds the hierarchy.
    [llc], if given, is the shared LLC instance (its geometry must match
    [config.llc.geometry]); [llc_owner] (default 0) is the owner identity
    this core presents to a way-partitioned shared LLC.  [perfect_llc]
    (default [false]) makes every access that reaches the LLC hit — the
    paper's "perfect LLC" run used to isolate the memory CPI component. *)

val config : t -> config
(** The parameters this hierarchy was built from. *)

val llc : t -> Cache.t
(** The (possibly shared) last-level cache instance. *)

val access : t -> kind:access_kind -> addr:int -> result
(** Simulates the access through L1 (instruction or data side per [kind]),
    then L2, then LLC, then memory. *)

val llc_accesses : t -> int  (* mppm: unit accesses *)
(** LLC lookups issued by this core's hierarchy. *)

val llc_misses : t -> int  (* mppm: unit accesses *)
(** LLC misses suffered by this core's hierarchy (0 under [perfect_llc]). *)

val counters : t -> (string * float) list
(** Per-level aggregate counters as observability pairs:
    [l1i.*]/[l1d.*]/[l2.*] from the private caches' statistics, plus this
    core's own [llc.accesses]/[llc.hits]/[llc.misses] (correct even when
    the LLC instance is shared).  Ready for
    [Mppm_obs.Registry.add_all]. *)

val pp_config : Format.formatter -> config -> unit
(** Human-readable rendering of a hierarchy configuration. *)
