type outcome = Hit of int | Miss

(* Each set stores tags in recency order: index 0 is MRU.  [fill] tracks how
   many ways of the set are valid; valid tags occupy the prefix.  For FIFO,
   [age_order] tracks tags in insertion order so hits do not disturb the
   victim cursor.  For partitioned caches, [owners] mirrors [recency] with
   the inserting owner of every line. *)
type t = {
  geometry : Geometry.t;
  policy : Replacement.t;
  recency : int array array;  (* per-set tags in recency order (MRU first) *)
  fill : int array;  (* valid ways per set *)
  age_order : int array array option;  (* FIFO: tags in insertion order *)
  rng : Mppm_util.Rng.t option;  (* Random policy only *)
  partition : int array option;  (* way quotas per owner *)
  owners : int array array option;  (* per-set owners, parallel to recency *)
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
}

let invalid_tag = -1

let create ?(policy = Replacement.Lru) ?partition geometry =
  let sets = geometry.Geometry.num_sets in
  let ways = geometry.Geometry.associativity in
  let make_tags () = Array.init sets (fun _ -> Array.make ways invalid_tag) in
  (match partition with
  | None -> ()
  | Some quotas ->
      if policy <> Replacement.Lru then
        invalid_arg "Cache.create: partitioning requires the LRU policy";
      if Array.length quotas = 0 then invalid_arg "Cache.create: empty partition";
      Array.iter
        (fun q -> if q <= 0 then invalid_arg "Cache.create: non-positive quota")
        quotas;
      if Array.fold_left ( + ) 0 quotas > ways then
        invalid_arg "Cache.create: quotas exceed associativity");
  {
    geometry;
    policy;
    recency = make_tags ();
    fill = Array.make sets 0;
    age_order =
      (match policy with Replacement.Fifo -> Some (make_tags ()) | _ -> None);
    rng =
      (match policy with
      | Replacement.Random seed -> Some (Mppm_util.Rng.create ~seed)
      | _ -> None);
    partition = Option.map Array.copy partition;
    owners = (match partition with Some _ -> Some (make_tags ()) | None -> None);
    accesses = 0;
    hits = 0;
    misses = 0;
  }

let geometry t = t.geometry

(* Toplevel so the per-access search allocates no closure; tags are ints,
   so the comparison is monomorphic. *)
(* mppm: unit _ -- way position option of a tag probe *)
let rec scan_set set fill tag i =
  if i >= fill then None
  else if Int.equal set.(i) tag then Some i
  else scan_set set fill tag (i + 1)

(* mppm: unit _ -- way position option of a tag probe *)
let find_in_set set fill tag = scan_set set fill tag 0

(* Shift a.(0..len-1) down one slot and place [v] at the front.  A manual
   loop beats Array.blit at these sizes (<= 16 elements) and this is the
   simulator's innermost operation. *)
let shift_down_and_front a len v =
  for i = len - 1 downto 1 do
    a.(i) <- a.(i - 1)
  done;
  a.(0) <- v

(* Choose the victim recency position for a partitioned set: an owner at or
   above quota evicts its own LRU line; otherwise the LRU line of any
   over-quota owner; otherwise the global LRU line (preferring other
   owners' lines). *)
(* The three victim predicates, int-coded so the recency scan below stays
   closure-free on the miss path: 0 = the owner's own line, 1 = a line of
   any over-quota owner, 2 = any other owner's line. *)
(* mppm: unit _ -- victim predicate *)
let victim_matches kind counts quotas owner o =
  match kind with
  | 0 -> Int.equal o owner
  | 1 -> o >= 0 && o < Array.length quotas && counts.(o) > quotas.(o)
  | _ -> not (Int.equal o owner)

(* Deepest (least-recent) position in [owners_row.(0..from)] matching the
   predicate, or -1. *)
(* mppm: unit ways -- recency depth within a set *)
let rec deepest_from owners_row counts quotas owner kind from =
  if from < 0 then -1
  else if victim_matches kind counts quotas owner owners_row.(from) then from
  else deepest_from owners_row counts quotas owner kind (from - 1)

(* mppm: unit ways -- victim recency position *)
let partition_victim owners_row ways quotas owner =
  let n_owners = Array.length quotas in
  (* lint: allow P1 per-victim owner census; partitioned mode only (fig 6) *)
  let counts = Array.make n_owners 0 in
  for i = 0 to ways - 1 do
    let o = owners_row.(i) in
    if o >= 0 && o < n_owners then counts.(o) <- counts.(o) + 1
  done;
  if counts.(owner) >= quotas.(owner) && counts.(owner) > 0 then begin
    let pos = deepest_from owners_row counts quotas owner 0 (ways - 1) in
    if pos >= 0 then pos else ways - 1
  end
  else
    let pos = deepest_from owners_row counts quotas owner 1 (ways - 1) in
    if pos >= 0 then pos
    else
      let pos = deepest_from owners_row counts quotas owner 2 (ways - 1) in
      if pos >= 0 then pos else ways - 1

let access_as t ~owner addr =
  let set_idx = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag t.geometry addr in
  let set = t.recency.(set_idx) in
  let fill = t.fill.(set_idx) in
  t.accesses <- t.accesses + 1;
  (match t.partition with
  | Some quotas ->
      if owner < 0 || owner >= Array.length quotas then
        invalid_arg "Cache.access_as: owner outside the partition"
  | None -> ());
  match find_in_set set fill tag with
  | Some pos ->
      t.hits <- t.hits + 1;
      let tag = set.(pos) in
      shift_down_and_front set (pos + 1) tag;
      (match t.owners with
      | Some owners ->
          let row = owners.(set_idx) in
          let o = row.(pos) in
          shift_down_and_front row (pos + 1) o
      | None -> ());
      Hit (pos + 1)
  | None ->
      t.misses <- t.misses + 1;
      let ways = t.geometry.Geometry.associativity in
      if fill < ways then begin
        (* Grow the valid prefix: shift it down, new tag in front. *)
        shift_down_and_front set (fill + 1) tag;
        t.fill.(set_idx) <- fill + 1;
        (match t.owners with
        | Some owners -> shift_down_and_front owners.(set_idx) (fill + 1) owner
        | None -> ());
        (match t.age_order with
        | Some ages -> ages.(set_idx).(fill) <- tag
        | None -> ());
        Miss
      end
      else begin
        (* lint: allow P1 one insert closure per miss; shared across the four replacement arms *)
        let insert victim_pos =
          shift_down_and_front set (victim_pos + 1) tag;
          match t.owners with
          | Some owners ->
              shift_down_and_front owners.(set_idx) (victim_pos + 1) owner
          | None -> ()
        in
        (match (t.partition, t.policy) with
        | Some quotas, _ ->
            let owners_row =
              match t.owners with Some o -> o.(set_idx) | None -> assert false
            in
            insert (partition_victim owners_row ways quotas owner)
        | None, Replacement.Lru -> insert (ways - 1)
        | None, Replacement.Random _ ->
            let rng = match t.rng with Some r -> r | None -> assert false in
            insert (Mppm_util.Rng.int rng ways)
        | None, Replacement.Fifo ->
            let ages =
              match t.age_order with Some a -> a.(set_idx) | None -> assert false
            in
            (* Victim is the oldest insertion: ages.(0).  Rotate ages and
               replace the victim in the recency array. *)
            let victim_tag = ages.(0) in
            Array.blit ages 1 ages 0 (ways - 1);
            ages.(ways - 1) <- tag;
            let victim_pos =
              match find_in_set set fill victim_tag with
              | Some p -> p
              | None -> assert false
            in
            insert victim_pos);
        Miss
      end

let access t addr = access_as t ~owner:0 addr

let probe t addr =
  let set_idx = Geometry.set_index t.geometry addr in
  let tag = Geometry.tag t.geometry addr in
  find_in_set t.recency.(set_idx) t.fill.(set_idx) tag <> None

let accesses t = t.accesses
let hits t = t.hits
let misses t = t.misses

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0

let clear t =
  Array.iteri
    (fun i set ->
      Array.fill set 0 (Array.length set) invalid_tag;
      t.fill.(i) <- 0)
    t.recency;
  (match t.age_order with
  | Some ages ->
      Array.iter (fun set -> Array.fill set 0 (Array.length set) invalid_tag) ages
  | None -> ());
  (match t.owners with
  | Some owners ->
      Array.iter (fun row -> Array.fill row 0 (Array.length row) invalid_tag) owners
  | None -> ());
  reset_stats t

let resident_lines t = Array.fold_left ( + ) 0 t.fill

let owner_lines t ~owner =
  match t.owners with
  | Some owners ->
      let total = ref 0 in
      Array.iteri
        (fun set_idx row ->
          for i = 0 to t.fill.(set_idx) - 1 do
            if row.(i) = owner then incr total
          done)
        owners;
      !total
  | None -> if owner = 0 then resident_lines t else 0

let counters t =
  [
    ("accesses", float_of_int t.accesses);
    ("hits", float_of_int t.hits);
    ("misses", float_of_int t.misses);
  ]

let pp_stats ppf t =
  Format.fprintf ppf "%a: %d accesses, %d hits, %d misses (%.2f%% miss rate)"
    Geometry.pp t.geometry t.accesses t.hits t.misses (100.0 *. miss_rate t)
