module Invariant = Mppm_util.Invariant

type t = { assoc : int; counters : float array (* length assoc + 1 *) }

(* Tolerant float comparison for the sanitizer's mass-conservation checks:
   counter sums are regrouped, so exact equality is too strict. *)
let mass_close a b =
  Float.abs (a -. b)
  <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let create ~assoc =
  if assoc <= 0 then invalid_arg "Sdc.create: assoc must be positive";
  (* lint: allow P1 per-window SDC; the flat-profile rewrite (ROADMAP item 2) reuses scratch *)
  { assoc; counters = Array.make (assoc + 1) 0.0 }

let assoc t = t.assoc

(* mppm: hot — per-access SDC update *)
let record t ~depth =
  if depth < 1 then invalid_arg "Sdc.record: depth must be >= 1";
  let i = if depth > t.assoc then t.assoc else depth - 1 in
  t.counters.(i) <- t.counters.(i) +. 1.0

let counter t i =
  if i < 1 || i > t.assoc + 1 then invalid_arg "Sdc.counter: index out of range";
  t.counters.(i - 1)

let accesses t = Array.fold_left ( +. ) 0.0 t.counters
let misses t = t.counters.(t.assoc)
let hits t = accesses t -. misses t

let miss_rate t =
  let total = accesses t in
  if Float.equal total 0.0 then 0.0 else misses t /. total

let copy t = { assoc = t.assoc; counters = Array.copy t.counters }

let add a b =
  if a.assoc <> b.assoc then invalid_arg "Sdc.add: associativity mismatch";
  let sum = { assoc = a.assoc; counters = Array.map2 ( +. ) a.counters b.counters } in
  if Invariant.enabled () then
    Invariant.checkf "sdc.add_mass"
      (mass_close (accesses sum) (accesses a +. accesses b))
      (fun () ->
        Printf.sprintf "sum %g <> %g + %g" (accesses sum) (accesses a)
          (accesses b));
  sum

(* mppm: hot — per-quantum SDC summation *)
let add_into ~dst src =
  if not (Int.equal dst.assoc src.assoc) then
    invalid_arg "Sdc.add_into: associativity mismatch";
  let before =
    if Invariant.enabled () then accesses dst +. accesses src else 0.0
  in
  for i = 0 to dst.assoc do
    dst.counters.(i) <- dst.counters.(i) +. src.counters.(i)
  done;
  if Invariant.enabled () then
    Invariant.check "sdc.add_mass" (mass_close (accesses dst) before)

let scale t k =
  if k < 0.0 then invalid_arg "Sdc.scale: negative factor";
  (* lint: allow P1 per-window rescale; the flat-profile rewrite (ROADMAP item 2) scales in place *)
  let scaled = { assoc = t.assoc; counters = Array.map (fun v -> v *. k) t.counters } in
  if Invariant.enabled () then
    Invariant.check "sdc.scale_mass"
      (mass_close (accesses scaled) (accesses t *. k));
  scaled

let reduce_associativity t ~assoc:new_assoc =
  if new_assoc <= 0 || new_assoc > t.assoc then
    invalid_arg "Sdc.reduce_associativity: bad target associativity";
  let counters = Array.make (new_assoc + 1) 0.0 in
  for i = 0 to new_assoc - 1 do
    counters.(i) <- t.counters.(i)
  done;
  for i = new_assoc to t.assoc do
    counters.(new_assoc) <- counters.(new_assoc) +. t.counters.(i)
  done;
  let reduced = { assoc = new_assoc; counters } in
  if Invariant.enabled () then
    Invariant.checkf "sdc.reduce_mass"
      (mass_close (accesses reduced) (accesses t))
      (fun () ->
        Printf.sprintf "%d->%d-way reduction changed mass %g -> %g" t.assoc
          new_assoc (accesses t) (accesses reduced));
  reduced

(* misses(k) for integer k ways = sum of counters deeper than k.  A
   toplevel tail recursion with an unboxed accumulator: no closure, no
   float ref on the per-quantum projection path. *)
(* mppm: unit _ -> ways -> ways -> accesses -> accesses *)
let rec sum_deeper counters last i acc =
  if i > last then acc else sum_deeper counters last (i + 1) (acc +. counters.(i))

(* mppm: hot — per-quantum miss projection *)
let misses_with_ways t ~ways =
  if ways < 0.0 then invalid_arg "Sdc.misses_with_ways: negative ways";
  if ways >= float_of_int t.assoc then misses t
  else
    let k = int_of_float (floor ways) in
    let frac = ways -. float_of_int k in
    let lo = sum_deeper t.counters t.assoc k 0.0
    and hi = sum_deeper t.counters t.assoc (k + 1) 0.0 in
    (* lint: allow U1 the interpolation weight [ways -. floor ways] is a dimensionless fraction of one way *)
    lo +. (frac *. (hi -. lo))

(* Prefix sums over an interval sequence's access masses: groundwork for
   the O(1) window queries of the flat-profile rewrite (ROADMAP item 2).
   Element 0 is 0 and element i the running total after interval i, so a
   window's mass is one subtraction of two cumulative readings. *)
let prefix_counts sdcs =
  let n = List.length sdcs in
  let prefix = Array.make (n + 1) 0.0 in
  List.iteri (fun i sdc -> prefix.(i + 1) <- prefix.(i) +. accesses sdc) sdcs;
  prefix

let window_accesses prefix ~first ~last =
  if first < 0 || last < first || last >= Array.length prefix then
    invalid_arg "Sdc.window_accesses: window out of range";
  prefix.(last) -. prefix.(first)

let to_list t = Array.to_list t.counters

let of_list ~assoc counters =
  if List.length counters <> assoc + 1 then
    invalid_arg "Sdc.of_list: length must be assoc + 1";
  if List.exists (fun c -> c < 0.0) counters then
    invalid_arg "Sdc.of_list: negative counter";
  { assoc; counters = Array.of_list counters }

let pp ppf t =
  Format.fprintf ppf "@[<h>SDC(%d-way:" t.assoc;
  Array.iteri
    (fun i c ->
      if i = t.assoc then Format.fprintf ppf " >%.0f" c
      else Format.fprintf ppf " %.0f" c)
    t.counters;
  Format.fprintf ppf ")@]"
