type t = {
  cache : Cache.t;
  mutable current : Sdc.t;
  total : Sdc.t;
}

let create geometry =
  let assoc = geometry.Geometry.associativity in
  {
    cache = Cache.create ~policy:Replacement.Lru geometry;
    current = Sdc.create ~assoc;
    total = Sdc.create ~assoc;
  }


(* mppm: hot — per-access profiling hook *)
let record_outcome t outcome =
  let depth =
    match outcome with Cache.Hit d -> d | Cache.Miss -> max_int
  in
  Sdc.record t.current ~depth;
  Sdc.record t.total ~depth

let access t addr =
  let outcome = Cache.access t.cache addr in
  record_outcome t outcome;
  outcome

let cut_interval t =
  let finished = t.current in
  t.current <- Sdc.create ~assoc:(Sdc.assoc finished);
  finished

let current t = t.current
let lifetime_total t = Sdc.copy t.total
