(** A set-associative cache model with pluggable replacement.

    The model tracks only tags (no data), which is all a timing/contention
    study needs.  Every access reports its LRU-stack depth on a hit, so a
    single pass both simulates the cache and yields the stack-distance
    profile. *)

type t
(** A mutable cache instance. *)

type outcome =
  | Hit of int
      (** [Hit depth]: the access hit at 1-based LRU depth [depth] of its
          set ([1] = most recently used).  For non-LRU policies the depth is
          still the recency depth, maintained alongside the policy. *)
  | Miss

val create : ?policy:Replacement.t -> ?partition:int array -> Geometry.t -> t
(** [create ~policy ~partition geometry] is an empty (all-invalid) cache.
    Default policy is {!Replacement.Lru}.

    [partition], when given, way-partitions every set among owners:
    [partition.(o)] is owner [o]'s way quota.  An owner at or above its
    quota evicts its own LRU line; an owner below it steals the LRU line of
    an over-quota owner (global LRU if nobody is over).  Quotas must be
    positive and sum to at most the associativity; partitioning requires
    the LRU policy.  Accesses then go through {!access_as}. *)

val geometry : t -> Geometry.t
(** The geometry this cache was created with. *)

val access : t -> int -> outcome  (* mppm: unit outcome *)
(** [access t addr] looks up the line containing byte address [addr],
    updates replacement state, fills the line on a miss, and updates the
    statistics counters.  Equivalent to [access_as t ~owner:0 addr]. *)

val access_as : t -> owner:int -> int -> outcome  (* mppm: unit outcome *)
(** [access_as t ~owner addr] is {!access} on behalf of [owner] (a core
    index); only meaningful for partitioned caches, where the owner selects
    the victim policy described at {!create}.  [owner] must be within the
    partition array when one exists. *)

val owner_lines : t -> owner:int -> int  (* mppm: unit sets*ways *)
(** Number of currently valid lines inserted by [owner] (0 for
    unpartitioned caches unless owner is 0). *)

val probe : t -> int -> bool
(** [probe t addr] is [true] iff the line is present; no state change. *)

val accesses : t -> int  (* mppm: unit accesses *)
(** Total lookups since creation or the last {!reset_stats}. *)

val hits : t -> int  (* mppm: unit accesses *)
(** Hits among {!accesses}. *)

val misses : t -> int  (* mppm: unit accesses *)
(** Misses among {!accesses}. *)

val miss_rate : t -> float  (* mppm: unit 1 *)
(** Misses over accesses; 0 if no accesses. *)

val reset_stats : t -> unit
(** Clears the statistics counters, keeping cache contents. *)

val clear : t -> unit
(** Invalidates every line and clears statistics. *)

val resident_lines : t -> int  (* mppm: unit sets*ways *)
(** Number of currently valid lines (for occupancy assertions). *)

val counters : t -> (string * float) list
(** The statistics counters as observability pairs
    ([accesses]/[hits]/[misses]), ready for
    [Mppm_obs.Registry.add_all]. *)

(* lint: allow S4 debugging printer kept as API surface *)
val pp_stats : Format.formatter -> t -> unit
(** One-line rendering of the statistics counters. *)
