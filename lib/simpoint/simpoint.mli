(** SimPoint-style phase analysis over MPPM profiles.

    The paper's methodology leans on SimPoint (Sherwood et al., its
    reference [13]) to pick representative simulation points.  Here the
    same idea is applied to the model's input: a profile's per-interval
    statistics form feature vectors; k-means groups the intervals into
    phases; and a profile can then be {e quantized} (every interval
    replaced by its phase representative, preserving order — lossy
    deduplication) for faster, smaller MPPM inputs.

    This doubles as an analysis tool: {!phases_of_profile} recovers the
    phase structure the synthetic benchmarks were built with. *)

type phases = {
  assignment : int array;  (** phase index per profile interval *)
  representatives : int array;
      (** per phase, the index of the interval closest to the centroid *)
  weights : float array;  (** per phase, fraction of intervals it covers *)
}

val features_of_profile : Mppm_profile.Profile.t -> float array array
(** Per-interval feature vectors: CPI, memory CPI, LLC accesses and misses
    per kilo-instruction, and the SDC shape (normalized counters) — each
    dimension winsorized at its 5th/95th percentile and range-normalized
    to [0, 1], so neither scale differences nor a single cold-start
    outlier interval dominate the clustering distance. *)

val phases_of_profile :
  ?k:int -> ?seed:int -> Mppm_profile.Profile.t -> phases
(** [phases_of_profile ~k profile] clusters the intervals into at most [k]
    phases (default 8). *)

val quantize :
  ?k:int -> ?seed:int -> Mppm_profile.Profile.t -> Mppm_profile.Profile.t
(** [quantize ~k profile] replaces every interval with its phase
    representative, preserving interval order and count.  The result is a
    valid MPPM input whose distinct-interval content is at most [k]; the
    bench's simpoint section measures the model-accuracy cost. *)

val distinct_intervals : Mppm_profile.Profile.t -> int
(** Number of structurally distinct intervals (diagnostic: 1 for a
    stationary benchmark's quantized profile). *)
