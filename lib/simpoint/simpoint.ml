module Profile = Mppm_profile.Profile
module Sdc = Mppm_cache.Sdc

type phases = {
  assignment : int array;
  representatives : int array;
  weights : float array;
}

let features_of_profile profile =
  let intervals = profile.Profile.intervals in
  let assoc = profile.Profile.llc_assoc in
  let raw =
    Array.map
      (fun iv ->
        let insns = float_of_int iv.Profile.instructions in
        let sdc_total = Float.max 1.0 (Sdc.accesses iv.Profile.sdc) in
        let shape =
          List.map (fun c -> c /. sdc_total) (Sdc.to_list iv.Profile.sdc)
        in
        Array.of_list
          ([
             iv.Profile.cycles /. insns;
             iv.Profile.memory_stall_cycles /. insns;
             iv.Profile.llc_accesses *. 1000.0 /. insns;
             iv.Profile.llc_misses *. 1000.0 /. insns;
           ]
          @ shape))
      intervals
  in
  (* Winsorize each dimension at the 5th/95th percentile, then range-
     normalize: a single cold-start interval must not compress the scale
     the real phases live on. *)
  let dim = 4 + assoc + 1 in
  let lo = Array.make dim 0.0 and hi = Array.make dim 0.0 in
  for d = 0 to dim - 1 do
    let column = Array.map (fun v -> v.(d)) raw in
    lo.(d) <- Mppm_util.Stats.percentile column ~p:5.0;
    hi.(d) <- Mppm_util.Stats.percentile column ~p:95.0
  done;
  Array.map
    (Array.mapi (fun d x ->
         if hi.(d) > lo.(d) then
           Float.max 0.0 (Float.min 1.0 ((x -. lo.(d)) /. (hi.(d) -. lo.(d))))
         else 0.0))
    raw

let phases_of_profile ?(k = 8) ?(seed = 1) profile =
  let features = features_of_profile profile in
  let { Kmeans.assignment; centroids; _ } = Kmeans.cluster ~seed ~k features in
  let k = Array.length centroids in
  let representatives = Array.make k (-1) in
  let best = Array.make k infinity in
  Array.iteri
    (fun i f ->
      let c = assignment.(i) in
      let d = Kmeans.squared_distance f centroids.(c) in
      if d < best.(c) then begin
        best.(c) <- d;
        representatives.(c) <- i
      end)
    features;
  let counts = Array.make k 0 in
  Array.iter (fun c -> counts.(c) <- counts.(c) + 1) assignment;
  (* Drop clusters that ended empty (possible when k exceeds the number of
     distinct behaviours): re-point them at representative 0. *)
  Array.iteri
    (fun c r -> if r < 0 then representatives.(c) <- 0)
    representatives;
  {
    assignment;
    representatives;
    weights =
      Array.map
        (fun c -> float_of_int c /. float_of_int (Array.length assignment))
        counts;
  }

let quantize ?(k = 8) ?seed profile =
  let phases = phases_of_profile ~k ?seed profile in
  let intervals =
    Array.mapi
      (fun i _ ->
        let rep = phases.representatives.(phases.assignment.(i)) in
        let iv = profile.Profile.intervals.(rep) in
        { iv with Profile.sdc = Sdc.copy iv.Profile.sdc })
      profile.Profile.intervals
  in
  Profile.make ~benchmark:profile.Profile.benchmark
    ~interval_instructions:profile.Profile.interval_instructions
    ~llc_assoc:profile.Profile.llc_assoc intervals

let distinct_intervals profile =
  let table = Hashtbl.create ~random:false 16 in
  Array.iter
    (fun iv ->
      let key =
        ( iv.Profile.cycles,
          iv.Profile.memory_stall_cycles,
          iv.Profile.llc_accesses,
          iv.Profile.llc_misses,
          Sdc.to_list iv.Profile.sdc )
      in
      Hashtbl.replace table key ())
    profile.Profile.intervals;
  Hashtbl.length table
