module Rng = Mppm_util.Rng

type result = {
  assignment : int array;
  centroids : float array array;
  inertia : float;
  iterations : int;
}

let squared_distance a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let closest centroids point =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun i c ->
      let d = squared_distance c point in
      if d < !best_d then begin
        best_d := d;
        best := i
      end)
    centroids;
  !best

(* k-means++: seed centroids proportionally to squared distance from the
   nearest already-chosen centroid. *)
let seed_centroids rng ~k points =
  let n = Array.length points in
  let chosen = ref [ Array.copy points.(Rng.int rng n) ] in
  while List.length !chosen < k do
    let centroids = Array.of_list !chosen in
    let weights =
      Array.map (fun p -> squared_distance p centroids.(closest centroids p)) points
    in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let pick =
      if total <= 0.0 then points.(Rng.int rng n)
      else points.(Rng.pick_weighted rng ~weights)
    in
    chosen := Array.copy pick :: !chosen
  done;
  Array.of_list (List.rev !chosen)

let cluster ?(max_iterations = 100) ?(seed = 1) ~k points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans.cluster: no points";
  if k <= 0 then invalid_arg "Kmeans.cluster: k <= 0";
  let dim = Array.length points.(0) in
  Array.iter
    (fun p ->
      if Array.length p <> dim then invalid_arg "Kmeans.cluster: ragged points")
    points;
  let k = min k n in
  let rng = Rng.create ~seed in
  let centroids = ref (seed_centroids rng ~k points) in
  let assignment = Array.make n (-1) in
  let iterations = ref 0 in
  let changed = ref true in
  while !changed && !iterations < max_iterations do
    incr iterations;
    changed := false;
    (* Assign. *)
    Array.iteri
      (fun i p ->
        let c = closest !centroids p in
        if c <> assignment.(i) then begin
          assignment.(i) <- c;
          changed := true
        end)
      points;
    (* Update. *)
    let sums = Array.init k (fun _ -> Array.make dim 0.0) in
    let counts = Array.make k 0 in
    Array.iteri
      (fun i p ->
        let c = assignment.(i) in
        counts.(c) <- counts.(c) + 1;
        Array.iteri (fun d v -> sums.(c).(d) <- sums.(c).(d) +. v) p)
      points;
    centroids :=
      Array.mapi
        (fun c sum ->
          if counts.(c) = 0 then
            (* Re-seed an emptied cluster on a random point. *)
            Array.copy points.(Rng.int rng n)
          else Array.map (fun v -> v /. float_of_int counts.(c)) sum)
        sums
  done;
  let inertia =
    Array.to_list points
    |> List.mapi (fun i p -> squared_distance p !centroids.(assignment.(i)))
    |> List.fold_left ( +. ) 0.0
  in
  { assignment; centroids = !centroids; inertia; iterations = !iterations }
