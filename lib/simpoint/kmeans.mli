(** Lloyd's k-means with k-means++ seeding: the clustering engine behind
    the SimPoint-style phase analysis (Sherwood et al., ASPLOS 2002 — the
    paper's reference [13] for picking representative simulation points). *)

type result = {
  assignment : int array;  (** cluster index per input point *)
  centroids : float array array;
  inertia : float;  (** sum of squared distances to assigned centroids *)
  iterations : int;
}

val cluster :
  ?max_iterations:int ->
  ?seed:int ->
  k:int ->
  float array array ->
  result
(** [cluster ~k points] clusters the points (all of equal dimension) into
    at most [k] groups.  [k] is clamped to the number of points.  k-means++
    initialization, Lloyd iterations until assignments stabilize or
    [max_iterations] (default 100).  Deterministic for a fixed [seed]
    (default 1).  Raises [Invalid_argument] on empty input, k <= 0, or
    ragged dimensions. *)

val squared_distance : float array -> float array -> float
(** Squared Euclidean distance between two equal-dimension points. *)

